"""Unit tests for the wall-clock replay benchmark harness
(:mod:`repro.bench.wallclock`)."""

import json

import numpy as np
import pytest

from repro.bench.wallclock import (
    PRE_PR_BASELINE_OPS_PER_S,
    assert_results_bit_identical,
    make_prefill,
    make_replay_phases,
    update_trajectory,
    wallclock_replay,
)
from repro.bench.workloads import MixedOpConfig, hot_key_set
from repro.core.lsm import LookupResult


class TestReplayWorkload:
    def test_phases_are_deterministic(self):
        a = make_replay_phases(1 << 11, 1 << 8, prefill_batches=3)
        b = make_replay_phases(1 << 11, 1 << 8, prefill_batches=3)
        assert set(a) == {"prefill", "mixed", "hot"}
        for (ka, va), (kb, vb) in zip(a["prefill"], b["prefill"]):
            np.testing.assert_array_equal(ka, kb)
            np.testing.assert_array_equal(va, vb)
        for phase in ("mixed", "hot"):
            for x, y in zip(a[phase], b[phase]):
                np.testing.assert_array_equal(x.opcodes, y.opcodes)
                np.testing.assert_array_equal(x.keys, y.keys)
                np.testing.assert_array_equal(x.values, y.values)
                np.testing.assert_array_equal(x.range_ends, y.range_ends)

    def test_each_phase_gets_half_the_ops(self):
        phases = make_replay_phases(1 << 12, 1 << 8, prefill_batches=0)
        assert phases["prefill"] == []
        for phase in ("mixed", "hot"):
            assert sum(b.size for b in phases[phase]) == 1 << 11

    def test_prefill_contains_the_hot_key_set(self):
        """Every hot lookup must be a *present* key, so the uncached
        baseline pays real per-level probes instead of Bloom rejections."""
        phases = make_replay_phases(1 << 11, 1 << 8, prefill_batches=4)
        hot = hot_key_set(
            MixedOpConfig(
                num_ops=1 << 10,
                tick_size=1 << 8,
                seed=8,  # REPLAY_SEED + 1, the hot phase's stream
                hot_key_count=256,
                hot_fraction=1.0,
            )
        )
        prefilled = np.concatenate([k for k, _ in phases["prefill"]])
        assert np.isin(hot, prefilled).all()

    def test_prefill_batches_fit_the_tick_size(self):
        batches = make_prefill(1 << 8, prefill_batches=5)
        assert len(batches) == 5
        for keys, values in batches:
            assert keys.size == 1 << 8
            np.testing.assert_array_equal(values, keys * np.uint64(5))
        combined = np.concatenate([k for k, _ in batches])
        assert np.unique(combined).size == combined.size  # no duplicates


class TestBitIdentityAssertion:
    def _result(self, **overrides):
        from repro.api.ops import ResultBatch, ResultStatus

        base = dict(
            request=None,
            statuses=np.full(2, ResultStatus.OK, dtype=np.uint8),
            found=np.array([True, False]),
            values=np.array([7, 0], dtype=np.uint64),
            counts=np.zeros(2, dtype=np.int64),
            range_offsets=np.zeros(3, dtype=np.int64),
            range_keys=np.empty(0, dtype=np.uint64),
            range_values=None,
            errors={},
        )
        base.update(overrides)
        return ResultBatch(**base)

    def test_identical_results_pass(self):
        assert_results_bit_identical(self._result(), self._result())

    def test_value_divergence_raises(self):
        with pytest.raises(AssertionError, match="values"):
            assert_results_bit_identical(
                self._result(),
                self._result(values=np.array([8, 0], dtype=np.uint64)),
                context="tick 3",
            )

    def test_found_divergence_raises(self):
        with pytest.raises(AssertionError, match="found"):
            assert_results_bit_identical(
                self._result(), self._result(found=np.array([True, True]))
            )


class TestLookupResultHelper:
    def test_smoke_replay_is_bit_identical_and_reports_cache_rows(self):
        rows = wallclock_replay(
            num_ops=1 << 10,
            tick_size=1 << 8,
            backends=("gpulsm",),
            prefill_batches=3,
            repeats=1,
        )
        # Reaching here means every tick matched bit-for-bit.
        phases = {r["phase"] for r in rows}
        assert phases == {"mixed", "hot", "overall"}
        cached_hot = [
            r for r in rows if r["mode"] == "cached" and r["phase"] == "hot"
        ][0]
        assert cached_hot["cache_hits"] > 0
        assert cached_hot["ops_per_s"] > 0
        uncached = [r for r in rows if r["mode"] == "uncached"]
        assert all("cache_hits" not in r for r in uncached)

    def test_lookup_result_shape(self):
        r = LookupResult(found=np.array([True]), values=None)
        assert r.values is None


class TestTrajectory:
    def test_creates_file_with_baseline_first(self, tmp_path):
        path = str(tmp_path / "BENCH_wallclock.json")
        rows = [
            {
                "backend": "gpulsm",
                "mode": "cached",
                "phase": "hot",
                "ops_per_s": 123.0,
            }
        ]
        doc = update_trajectory(path, rows, label="run A")
        assert doc["entries"][0]["label"] == "pre-PR baseline"
        assert doc["entries"][0]["ops_per_s"] == PRE_PR_BASELINE_OPS_PER_S
        assert doc["entries"][-1]["ops_per_s"]["gpulsm"]["hot"] == 123.0
        with open(path) as handle:
            assert json.load(handle) == doc

    def test_rerun_replaces_same_label(self, tmp_path):
        path = str(tmp_path / "BENCH_wallclock.json")
        row = {
            "backend": "gpulsm",
            "mode": "cached",
            "phase": "hot",
            "ops_per_s": 1.0,
        }
        update_trajectory(path, [row], label="run A")
        update_trajectory(path, [dict(row, ops_per_s=2.0)], label="run A")
        doc = update_trajectory(path, [dict(row, ops_per_s=3.0)], label="run B")
        labels = [e["label"] for e in doc["entries"]]
        assert labels == ["pre-PR baseline", "run A", "run B"]
        run_a = [e for e in doc["entries"] if e["label"] == "run A"][0]
        assert run_a["ops_per_s"]["gpulsm"]["hot"] == 2.0
