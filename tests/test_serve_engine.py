"""Serving-engine semantics: admission, tick formation, ticket ordering.

The deterministic anchor for every test is a pure-python oracle:

* **STRICT** consistency makes the engine's answers independent of where
  ticks are cut — operation *i* observes every update admitted before it —
  so any interleaving of clients must match a serial dict replay of the
  global submission order, whatever the scheduler does.
* **SNAPSHOT** consistency is tick-relative, so those tests pin the tick
  boundaries (huge target + huge linger, explicit ``flush`` per chunk) and
  replay the paper's batch semantics chunk by chunk (queries answer from
  the pre-tick state; a delete dominates the tick, the first insert wins).
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Consistency,
    Engine,
    EngineClosedError,
    EngineSaturatedError,
    KVStore,
    Op,
    OpBatch,
    OpCode,
    TickConfig,
    TickTrigger,
)
from repro.core.config import LSMConfig
from repro.core.lsm import GPULSM
from repro.gpu.device import Device
from repro.gpu.spec import K40C_SPEC

KEY_SPACE = 48
WAIT = 10.0  # generous wall-clock bound for thread hand-offs


def _lsm(batch_size=64, seed=0):
    return GPULSM(
        config=LSMConfig(batch_size=batch_size), device=Device(K40C_SPEC, seed=seed)
    )


def _wait_until(predicate, timeout=WAIT):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return False


# ---------------------------------------------------------------------- #
# Oracles
# ---------------------------------------------------------------------- #
def _answer(op, state):
    if op.code is OpCode.LOOKUP:
        return ("lookup", state.get(op.key))
    if op.code is OpCode.COUNT:
        return ("count", sum(1 for k in state if op.key <= k <= op.range_end))
    return (
        "range",
        sorted(k for k in state if op.key <= k <= op.range_end),
    )


def _check(op, result, expected) -> None:
    if op.code in (OpCode.INSERT, OpCode.DELETE):
        assert result.ok
        return
    kind, want = expected
    if kind == "lookup":
        if want is None:
            assert not result.found
        else:
            assert result.found and result.value == want
    elif kind == "count":
        assert result.count == want
    else:
        assert [int(k) for k in result.keys] == want


def strict_oracle(ops, state):
    """Expected per-op answers under arrival order; mutates ``state``."""
    answers = []
    for op in ops:
        answers.append(_answer(op, state) if op.code.is_query else None)
        if op.code is OpCode.INSERT:
            state[op.key] = op.value
        elif op.code is OpCode.DELETE:
            state.pop(op.key, None)
    return answers


def snapshot_oracle(ops, state):
    """Expected answers for one tick under the paper's batch rules."""
    pre = dict(state)
    answers = [
        _answer(op, pre) if op.code.is_query else None for op in ops
    ]
    deleted = {op.key for op in ops if op.code is OpCode.DELETE}
    first_insert = {}
    for op in ops:
        if op.code is OpCode.INSERT and op.key not in first_insert:
            first_insert[op.key] = op.value
    for key in deleted:
        state.pop(key, None)
    for key, value in first_insert.items():
        if key not in deleted:
            state[key] = value
    return answers


#: Operation strategy over a deliberately tiny key space (maximises
#: duplicate/delete interactions inside one tick).
_ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(list(OpCode)),
        st.integers(0, KEY_SPACE - 1),
        st.integers(0, KEY_SPACE - 1),
        st.integers(0, 1 << 20),
    ).map(
        lambda t: (
            Op(t[0], min(t[1], t[2]), value=t[3], range_end=max(t[1], t[2]))
            if t[0] in (OpCode.COUNT, OpCode.RANGE)
            else Op(t[0], t[1], value=t[3])
        )
    ),
    min_size=1,
    max_size=48,
)


# ---------------------------------------------------------------------- #
# The scheduling policy (pure)
# ---------------------------------------------------------------------- #
class TestTickConfig:
    def test_dual_trigger(self):
        config = TickConfig(target_tick_size=8, linger=0.5)
        assert config.trigger(0, 99.0) is None
        assert config.trigger(8, 0.0) is TickTrigger.SIZE
        assert config.trigger(100, 0.0) is TickTrigger.SIZE
        assert config.trigger(3, 0.5) is TickTrigger.DEADLINE
        assert config.trigger(3, 0.1) is None
        assert config.time_until_deadline(0.1) == pytest.approx(0.4)

    def test_defaults_and_validation(self):
        assert TickConfig(target_tick_size=16).max_queue_depth == 64
        with pytest.raises(ValueError, match="target_tick_size"):
            TickConfig(target_tick_size=0)
        with pytest.raises(ValueError, match="linger"):
            TickConfig(linger=-1.0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            TickConfig(target_tick_size=8, max_queue_depth=4)


# ---------------------------------------------------------------------- #
# Inline (single-client) path — the KVStore substrate
# ---------------------------------------------------------------------- #
class TestInlineApply:
    def test_apply_without_threads(self):
        engine = Engine(_lsm())
        keys = np.arange(16)
        assert engine.apply(OpBatch.inserts(keys, keys * 7)).ok
        res = engine.apply(OpBatch.lookups(np.array([3, 99])))
        assert res.result(0).value == 21 and not res.result(1).found
        stats = engine.stats()
        assert stats.ticks == 2 and stats.triggers == {"direct": 2}
        assert stats.ops_completed == 18 and stats.queue_depth == 0
        assert stats.simulated_seconds > 0
        assert stats.op_latency["p50"] <= stats.op_latency["p99"]

    def test_kvstore_is_a_view_over_its_engine(self):
        store = KVStore(batch_size=16, device=Device(K40C_SPEC, seed=0))
        store.apply(OpBatch.inserts(np.arange(4), np.arange(4)))
        assert store.ticks == 1 == store.engine.ticks
        assert store.stats().triggers == {"direct": 1}
        rows = store.stats().summary_rows()
        assert rows[0]["region"] == "serve.engine" and rows[0]["items"] == 4

    def test_submit_requires_a_running_engine(self):
        engine = Engine(_lsm())
        with pytest.raises(EngineClosedError, match="not running"):
            engine.submit(Op.lookup(1))


# ---------------------------------------------------------------------- #
# Threaded admission and tick formation
# ---------------------------------------------------------------------- #
class TestThreadedEngine:
    def test_size_trigger_forms_a_tick_without_flush(self):
        with Engine(
            _lsm(), TickConfig(target_tick_size=4, linger=60.0)
        ) as engine:
            tickets = [engine.submit(Op.insert(k, k)) for k in range(4)]
            results = [t.result(WAIT) for t in tickets]
            assert all(r.ok for r in results)
            lookup = engine.submit_batch(OpBatch.lookups(np.arange(4)))
            engine.flush(WAIT)
            assert list(lookup.result(WAIT).found) == [True] * 4
        stats = engine.stats()
        assert stats.triggers.get("size", 0) >= 1
        assert stats.ticks == 2 and stats.ops_completed == 8

    def test_deadline_trigger_bounds_latency_under_light_load(self):
        with Engine(
            _lsm(), TickConfig(target_tick_size=1 << 10, linger=0.02)
        ) as engine:
            ticket = engine.submit(Op.insert(7, 70))
            assert ticket.result(WAIT).ok  # resolved by the linger deadline
        assert engine.stats().triggers.get("deadline", 0) >= 1

    def test_close_drains_and_rejects_new_submissions(self):
        engine = Engine(_lsm(), TickConfig(target_tick_size=1 << 10, linger=60.0))
        engine.start()
        tickets = [engine.submit(Op.insert(k, k)) for k in range(5)]
        engine.close()
        assert all(t.result(WAIT).ok for t in tickets)  # drained as flush ticks
        assert engine.stats().triggers.get("flush", 0) >= 1
        with pytest.raises(EngineClosedError):
            engine.submit(Op.lookup(1))
        with pytest.raises(EngineClosedError):
            engine.start()

    def test_backpressure_bound_saturates(self):
        engine = Engine(
            _lsm(batch_size=8),
            TickConfig(target_tick_size=4, linger=60.0, max_queue_depth=4),
        )
        engine.start()
        try:
            # Hold the backend so the pipeline (one executing tick + one
            # planned tick) fills and the admission queue backs up.
            with engine._exec_lock:
                for _ in range(3):  # tick executing, tick queued, tick cut
                    for k in range(4):
                        engine.submit(Op.insert(k, k), timeout=WAIT)
                    assert _wait_until(lambda: engine.queue_depth == 0)
                for k in range(4):  # refill the admission queue to the bound
                    engine.submit(Op.insert(k, k), timeout=WAIT)
                with pytest.raises(EngineSaturatedError, match="backpressure"):
                    engine.submit(Op.insert(9, 9), timeout=0)
            engine.flush(WAIT)
            ticket = engine.submit(Op.lookup(0))
            engine.flush(WAIT)
            assert ticket.result(WAIT).found
        finally:
            engine.close()
        assert engine.stats().max_queue_depth_seen >= 4

    def test_failed_tick_resolves_tickets_with_the_error(self):
        class Exploding:
            key_only = True

            @classmethod
            def supported_operations(cls):
                return frozenset({"insert", "delete", "lookup"})

            def insert(self, keys, values=None):
                raise RuntimeError("backend blew up")

            def lookup(self, keys):  # pragma: no cover - updates fail first
                raise RuntimeError("backend blew up")

        with Engine(
            Exploding(), TickConfig(target_tick_size=2, linger=60.0)
        ) as engine:
            t1 = engine.submit(Op.insert(1))
            t2 = engine.submit(Op.insert(2))
            with pytest.raises(RuntimeError, match="blew up"):
                t1.result(WAIT)
            with pytest.raises(RuntimeError, match="blew up"):
                t2.result(WAIT)
        stats = engine.stats()
        assert stats.failed_ticks == 1 and stats.ticks == 0

    def test_empty_batch_ticket_resolves_immediately(self):
        engine = Engine(_lsm())
        engine.start()
        ticket = engine.submit_batch(OpBatch.empty())
        assert ticket.done and len(ticket.result(0)) == 0
        engine.close()

    def test_stats_histogram_and_rates(self):
        with Engine(
            _lsm(), TickConfig(target_tick_size=4, linger=60.0)
        ) as engine:
            for k in range(8):
                engine.submit(Op.insert(k, k))
            engine.flush(WAIT)
        stats = engine.stats()
        assert sum(stats.tick_size_histogram.values()) == stats.ticks
        assert stats.mean_tick_size == pytest.approx(4.0)
        assert stats.simulated_rate_m_per_s > 0
        assert stats.wall_seconds >= 0


# ---------------------------------------------------------------------- #
# Ticket ordering and fairness vs the serial oracle
# ---------------------------------------------------------------------- #
class TestOrderingAndFairness:
    def test_interleaved_clients_match_serial_oracle_strict(self):
        """Round-robin interleave of 3 clients; arbitrary tick cuts."""
        rng = np.random.default_rng(7)
        clients = [
            [
                Op(OpCode(int(rng.integers(0, 3))), int(rng.integers(0, KEY_SPACE)),
                   value=int(rng.integers(0, 1000)))
                for _ in range(40)
            ]
            for _ in range(3)
        ]
        arrival = [op for trio in zip(*clients) for op in trio]
        with Engine(
            _lsm(batch_size=16),
            TickConfig(target_tick_size=8, linger=0.001),
            consistency=Consistency.STRICT,
        ) as engine:
            tickets = [engine.submit(op, timeout=WAIT) for op in arrival]
            engine.flush(WAIT)
            expected = strict_oracle(arrival, {})
            for op, ticket, want in zip(arrival, tickets, expected):
                result = ticket.result(WAIT)
                if op.code.is_query:
                    _check(op, result, want)
                else:
                    assert result.ok

    @settings(max_examples=20, deadline=None)
    @given(chunks=st.lists(_ops_strategy, min_size=1, max_size=4))
    def test_property_snapshot_ticks_match_oracle(self, chunks):
        """Flush-delimited ticks under SNAPSHOT match the batch oracle."""
        engine = Engine(
            _lsm(batch_size=32),
            TickConfig(target_tick_size=1 << 20, linger=3600.0),
            consistency=Consistency.SNAPSHOT,
        )
        engine.start()
        try:
            state = {}
            for chunk in chunks:
                tickets = [engine.submit(op, timeout=WAIT) for op in chunk]
                engine.flush(WAIT)
                expected = snapshot_oracle(chunk, state)
                for op, ticket, want in zip(chunk, tickets, expected):
                    result = ticket.result(WAIT)
                    if op.code.is_query:
                        _check(op, result, want)
                    else:
                        assert result.ok
        finally:
            engine.close()

    @settings(max_examples=20, deadline=None)
    @given(
        ops=_ops_strategy,
        target=st.integers(1, 16),
    )
    def test_property_strict_is_tick_cut_invariant(self, ops, target):
        """STRICT answers are the serial replay for any tick partition."""
        engine = Engine(
            _lsm(batch_size=16),
            TickConfig(target_tick_size=target, linger=0.001),
            consistency=Consistency.STRICT,
        )
        engine.start()
        try:
            tickets = [engine.submit(op, timeout=WAIT) for op in ops]
            engine.flush(WAIT)
            expected = strict_oracle(ops, {})
            for op, ticket, want in zip(ops, tickets, expected):
                result = ticket.result(WAIT)
                if op.code.is_query:
                    _check(op, result, want)
                else:
                    assert result.ok
        finally:
            engine.close()

    def test_stress_eight_concurrent_clients_match_oracle(self):
        """≥ 8 submitting threads on disjoint key ranges, exact answers.

        Each client owns a private key range, so its per-key history is
        exactly its own submission order; STRICT + FIFO admission make
        every lookup's answer the client-local serial-dict replay, no
        matter how the scheduler interleaves the clients into ticks.
        """
        num_clients, ops_per_client, span = 8, 120, 64
        engine = Engine(
            _lsm(batch_size=256, seed=3),
            TickConfig(target_tick_size=64, linger=0.002),
            consistency=Consistency.STRICT,
        )
        engine.start()
        failures = []
        barrier = threading.Barrier(num_clients)

        def client(cid):
            rng = np.random.default_rng(1000 + cid)
            base = cid * span
            state = {}
            pending = []
            try:
                barrier.wait(WAIT)
                for _ in range(ops_per_client):
                    kind = int(rng.integers(0, 3))
                    key = base + int(rng.integers(0, span))
                    if kind == 0:
                        value = int(rng.integers(0, 1 << 20))
                        pending.append((engine.submit(Op.insert(key, value),
                                                      timeout=WAIT), None))
                        state[key] = value
                    elif kind == 1:
                        pending.append((engine.submit(Op.delete(key),
                                                      timeout=WAIT), None))
                        state.pop(key, None)
                    else:
                        pending.append((engine.submit(Op.lookup(key),
                                                      timeout=WAIT),
                                        state.get(key)))
                for ticket, want in pending:
                    result = ticket.result(WAIT)
                    if want is not None or result.op.code is OpCode.LOOKUP:
                        if want is None:
                            assert not result.found, result
                        else:
                            assert result.found and result.value == want, result
                    else:
                        assert result.ok
            except Exception as exc:  # surfaces thread failures to pytest
                failures.append((cid, exc))

        threads = [
            threading.Thread(target=client, args=(cid,))
            for cid in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(WAIT * 6)
        engine.close()
        assert not failures, failures
        stats = engine.stats()
        assert stats.ops_completed == num_clients * ops_per_client
        assert stats.failed_ticks == 0
        # Multi-client coalescing actually happened: far fewer ticks than
        # operations, and at least one full size-triggered tick.
        assert stats.ticks < stats.ops_completed / 4
        assert stats.triggers.get("size", 0) >= 1
