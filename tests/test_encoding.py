"""Unit tests for the key encoding (repro.core.encoding)."""

import numpy as np
import pytest

from repro.core.encoding import (
    DEFAULT_ENCODER,
    KeyEncoder,
    MAX_KEY,
    STATUS_REGULAR,
    STATUS_TOMBSTONE,
)


class TestScalarEncoding:
    def test_roundtrip_regular(self):
        word = DEFAULT_ENCODER.encode_scalar(12345, STATUS_REGULAR)
        key, status = DEFAULT_ENCODER.decode_scalar(word)
        assert key == 12345 and status == STATUS_REGULAR

    def test_roundtrip_tombstone(self):
        word = DEFAULT_ENCODER.encode_scalar(12345, STATUS_TOMBSTONE)
        key, status = DEFAULT_ENCODER.decode_scalar(word)
        assert key == 12345 and status == STATUS_TOMBSTONE

    def test_tombstone_sorts_before_regular_of_same_key(self):
        t = DEFAULT_ENCODER.encode_scalar(99, STATUS_TOMBSTONE)
        r = DEFAULT_ENCODER.encode_scalar(99, STATUS_REGULAR)
        assert t < r

    def test_different_keys_order_dominates_status(self):
        r_small = DEFAULT_ENCODER.encode_scalar(10, STATUS_REGULAR)
        t_large = DEFAULT_ENCODER.encode_scalar(11, STATUS_TOMBSTONE)
        assert r_small < t_large

    def test_max_key_is_31_bits(self):
        assert DEFAULT_ENCODER.max_key == MAX_KEY == (1 << 31) - 1
        DEFAULT_ENCODER.encode_scalar(MAX_KEY, STATUS_REGULAR)  # must not raise

    def test_key_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_ENCODER.encode_scalar(1 << 31, STATUS_REGULAR)
        with pytest.raises(ValueError):
            DEFAULT_ENCODER.encode_scalar(-1, STATUS_REGULAR)

    def test_bad_status_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_ENCODER.encode_scalar(1, 2)

    def test_placebo_word_is_max_key_tombstone(self):
        word = DEFAULT_ENCODER.placebo_word
        key, status = DEFAULT_ENCODER.decode_scalar(word)
        assert key == MAX_KEY
        assert status == STATUS_TOMBSTONE


class TestVectorEncoding:
    def test_roundtrip_array(self, rng):
        keys = rng.integers(0, MAX_KEY, 1000, dtype=np.uint32)
        statuses = rng.integers(0, 2, 1000).astype(np.uint8)
        words = DEFAULT_ENCODER.encode(keys, statuses)
        assert np.array_equal(DEFAULT_ENCODER.decode_key(words), keys)
        assert np.array_equal(DEFAULT_ENCODER.decode_status(words), statuses)

    def test_scalar_status_broadcast(self, rng):
        keys = rng.integers(0, 1000, 64, dtype=np.uint32)
        words = DEFAULT_ENCODER.encode(keys, STATUS_TOMBSTONE)
        assert np.all(DEFAULT_ENCODER.is_tombstone(words))

    def test_is_regular_complement_of_is_tombstone(self, rng):
        keys = rng.integers(0, 1000, 64, dtype=np.uint32)
        statuses = rng.integers(0, 2, 64).astype(np.uint8)
        words = DEFAULT_ENCODER.encode(keys, statuses)
        assert np.array_equal(
            DEFAULT_ENCODER.is_regular(words), ~DEFAULT_ENCODER.is_tombstone(words)
        )

    def test_out_of_domain_array_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_ENCODER.encode(np.array([1 << 31], dtype=np.uint64), 1)

    def test_mismatched_status_shape_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_ENCODER.encode(np.array([1, 2], dtype=np.uint32),
                                   np.array([1, 0, 1]))

    def test_bad_status_values_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_ENCODER.encode(np.array([1], dtype=np.uint32), np.array([3]))

    def test_encoded_dtype_matches_config(self):
        words = DEFAULT_ENCODER.encode(np.array([1], dtype=np.uint32), 1)
        assert words.dtype == np.uint32


class TestQueryProbes:
    def test_lower_probe_below_all_words_of_key(self):
        k = 1234
        probe = int(DEFAULT_ENCODER.lower_probe(np.array([k]))[0])
        assert probe <= DEFAULT_ENCODER.encode_scalar(k, STATUS_TOMBSTONE)
        assert probe <= DEFAULT_ENCODER.encode_scalar(k, STATUS_REGULAR)
        assert probe > DEFAULT_ENCODER.encode_scalar(k - 1, STATUS_REGULAR)

    def test_upper_probe_above_all_words_of_key(self):
        k = 1234
        probe = int(DEFAULT_ENCODER.upper_probe(np.array([k]))[0])
        assert probe >= DEFAULT_ENCODER.encode_scalar(k, STATUS_REGULAR)
        assert probe < DEFAULT_ENCODER.encode_scalar(k + 1, STATUS_TOMBSTONE)

    def test_strip_status_matches_decode_key(self, rng):
        keys = rng.integers(0, 1000, 32, dtype=np.uint32)
        words = DEFAULT_ENCODER.encode(keys, 1)
        assert np.array_equal(DEFAULT_ENCODER.strip_status(words),
                              DEFAULT_ENCODER.decode_key(words))


class Test64BitEncoder:
    def test_wider_domain(self):
        enc = KeyEncoder(np.dtype(np.uint64))
        assert enc.max_key == (1 << 63) - 1
        word = enc.encode_scalar(enc.max_key, STATUS_REGULAR)
        key, status = enc.decode_scalar(word)
        assert key == enc.max_key and status == STATUS_REGULAR

    def test_rejects_signed_dtype(self):
        with pytest.raises(TypeError):
            KeyEncoder(np.dtype(np.int32))

    def test_key_bits(self):
        assert KeyEncoder(np.dtype(np.uint32)).key_bits == 32
        assert KeyEncoder(np.dtype(np.uint64)).key_bits == 64
