"""Unit tests for the cuckoo hash table baseline (repro.baselines.cuckoo_hash)."""

import numpy as np
import pytest

from repro.baselines.cuckoo_hash import CuckooHashTable, EMPTY_SLOT, STASH_SIZE


class TestBuild:
    def test_build_and_lookup_all(self, device, rng):
        keys = rng.choice(1 << 30, 2000, replace=False).astype(np.uint64)
        values = rng.integers(0, 1 << 30, 2000, dtype=np.uint64)
        table = CuckooHashTable(device=device)
        table.bulk_build(keys, values)
        res = table.lookup(keys)
        assert res.found.all()
        assert np.array_equal(res.values, values)

    def test_missing_keys_not_found(self, device, rng):
        keys = rng.choice(1 << 20, 1000, replace=False).astype(np.uint64)
        table = CuckooHashTable(device=device)
        table.bulk_build(keys, keys)
        missing = keys + (1 << 21)
        assert not table.lookup(missing).found.any()

    def test_table_size_respects_load_factor(self, device, rng):
        keys = rng.choice(1 << 20, 1000, replace=False).astype(np.uint64)
        table = CuckooHashTable(device=device, load_factor=0.5)
        table.bulk_build(keys, keys)
        assert table.table_size >= 2000

    def test_high_load_factor_still_builds(self, device, rng):
        keys = rng.choice(1 << 25, 4000, replace=False).astype(np.uint64)
        table = CuckooHashTable(device=device, load_factor=0.9)
        table.bulk_build(keys, keys)
        assert table.lookup(keys[:100]).found.all()

    def test_single_element(self, device):
        table = CuckooHashTable(device=device)
        table.bulk_build(np.array([7], dtype=np.uint64), np.array([70], dtype=np.uint64))
        res = table.lookup(np.array([7, 8], dtype=np.uint64))
        assert res.found[0] and res.values[0] == 70
        assert not res.found[1]

    def test_rejects_empty_build(self, device):
        with pytest.raises(ValueError):
            CuckooHashTable(device=device).bulk_build(
                np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.uint64)
            )

    def test_rejects_sentinel_key(self, device):
        with pytest.raises(ValueError):
            CuckooHashTable(device=device).bulk_build(
                np.array([EMPTY_SLOT], dtype=np.uint64),
                np.array([1], dtype=np.uint64),
            )

    def test_rejects_mismatched_lengths(self, device):
        with pytest.raises(ValueError):
            CuckooHashTable(device=device).bulk_build(
                np.arange(3, dtype=np.uint64), np.arange(4, dtype=np.uint64)
            )

    def test_reproducible_with_seed(self, device, rng):
        keys = rng.choice(1 << 20, 500, replace=False).astype(np.uint64)
        t1 = CuckooHashTable(device=device, seed=5)
        t2 = CuckooHashTable(device=device, seed=5)
        t1.bulk_build(keys, keys)
        t2.bulk_build(keys, keys)
        assert np.array_equal(t1.table_keys, t2.table_keys)

    def test_invalid_parameters(self, device):
        with pytest.raises(ValueError):
            CuckooHashTable(device=device, load_factor=0.99)
        with pytest.raises(ValueError):
            CuckooHashTable(device=device, num_hash_functions=1)


class TestLookup:
    def test_empty_table(self, device):
        table = CuckooHashTable(device=device)
        res = table.lookup(np.array([1], dtype=np.uint64))
        assert not res.found[0]

    def test_empty_query_set(self, device, rng):
        keys = rng.choice(1 << 20, 100, replace=False).astype(np.uint64)
        table = CuckooHashTable(device=device)
        table.bulk_build(keys, keys)
        assert len(table.lookup(np.zeros(0, dtype=np.uint64))) == 0

    def test_mixed_hit_miss(self, device, rng):
        keys = rng.choice(1 << 20, 512, replace=False).astype(np.uint64)
        table = CuckooHashTable(device=device)
        table.bulk_build(keys, keys * 2)
        queries = np.concatenate([keys[:10], keys[:10] + (1 << 21)])
        res = table.lookup(queries)
        assert res.found[:10].all()
        assert not res.found[10:].any()
        assert np.array_equal(res.values[:10], keys[:10] * 2)

    def test_lookup_traffic_independent_of_size(self, device, rng):
        # O(1) probes: per-query traffic must not grow with table size the
        # way binary search does (the basis of Table III's cuckoo advantage).
        q = rng.choice(1 << 20, 256, replace=False).astype(np.uint64)
        small_keys = rng.choice(1 << 20, 1 << 9, replace=False).astype(np.uint64)
        large_keys = rng.choice(1 << 25, 1 << 13, replace=False).astype(np.uint64)

        small = CuckooHashTable(device=device)
        small.bulk_build(small_keys, small_keys)
        large = CuckooHashTable(device=device)
        large.bulk_build(large_keys, large_keys)

        before = device.snapshot()
        small.lookup(q)
        small_traffic = device.counter.since(before).total_bytes
        before = device.snapshot()
        large.lookup(q)
        large_traffic = device.counter.since(before).total_bytes
        # Allow a small tolerance: probe-termination patterns differ slightly.
        assert large_traffic <= small_traffic * 2.5


class TestStashBehaviour:
    def test_stash_lookup(self, device, rng):
        # Force stash usage by jamming a tiny table at a high load factor
        # with few hash functions; if the build succeeds with a stash, the
        # stashed keys must still be found.
        keys = rng.choice(1 << 16, 200, replace=False).astype(np.uint64)
        table = CuckooHashTable(device=device, load_factor=0.95,
                                num_hash_functions=2, max_rebuild_attempts=20)
        table.bulk_build(keys, keys)
        res = table.lookup(keys)
        assert res.found.all()
        assert table.stash_keys.size <= STASH_SIZE
