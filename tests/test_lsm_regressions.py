"""Regression tests for fixed GPU LSM edge cases.

* ``bulk_build`` must validate its keys against the encoder's 31-bit
  original-key domain up front, like lookup and the range queries already
  do, instead of relying on downstream encode behaviour.
* ``stale_fraction_estimate`` must not be fooled by duplicate-key
  re-insertions: repeatedly inserting the same key inflates the lifetime
  insertion counter without growing the live population, which used to
  drive the estimate to zero exactly when almost everything was stale.
* Query paths must reject *negative* keys up front: the upper bound of the
  31-bit domain was validated but a negative key slipped through and
  silently wrapped into a huge unsigned probe word, searching for an
  unrelated key instead of failing loudly.  Applies to
  ``lookup`` / ``count`` / ``range_query`` on the GPU LSM and to both
  baselines.
"""

import numpy as np
import pytest

from repro.baselines.cuckoo_hash import CuckooHashTable
from repro.baselines.sorted_array import GPUSortedArray
from repro.core.config import LSMConfig
from repro.core.lsm import GPULSM
from repro.scale.sharded import ShardedLSM


class TestBulkBuildDomainValidation:
    def test_out_of_domain_key_rejected(self, device):
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=device)
        keys = np.array([1, 2, 1 << 31], dtype=np.uint64)
        values = np.zeros(3, dtype=np.uint32)
        with pytest.raises(ValueError, match="original-key domain"):
            lsm.bulk_build(keys, values)
        # The failed build must not leave partial state behind.
        assert lsm.num_batches == 0 and lsm.num_elements == 0

    def test_negative_key_rejected(self, device):
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=device, key_only=True)
        # Negative keys now get the dedicated non-negativity message shared
        # with every query surface.
        with pytest.raises(ValueError, match="non-negative"):
            lsm.bulk_build(np.array([3, -1], dtype=np.int64))

    def test_max_key_accepted(self, device):
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=device, key_only=True)
        lsm.bulk_build(np.array([0, (1 << 31) - 1], dtype=np.uint64))
        res = lsm.lookup(np.array([(1 << 31) - 1], dtype=np.uint64))
        assert bool(res.found[0])


class TestStaleFractionEstimate:
    def test_duplicate_reinsertions_do_not_zero_the_estimate(self, device):
        b = 8
        lsm = GPULSM(config=LSMConfig(batch_size=b), device=device)
        # The same single key re-inserted for 8 full batches: 64 resident
        # elements of which exactly one is live.
        for i in range(8):
            lsm.insert(
                np.full(b, 42, dtype=np.uint32), np.full(b, i, dtype=np.uint32)
            )
        assert lsm.num_elements == 64
        estimate = lsm.stale_fraction_estimate()
        # True stale fraction is 63/64; the estimate must not undershoot
        # grossly (the pre-fix value here was 0.0).
        assert estimate >= 0.8

    def test_unique_insertions_report_no_staleness(self, device):
        b = 8
        lsm = GPULSM(config=LSMConfig(batch_size=b), device=device)
        for i in range(4):
            keys = np.arange(i * b, (i + 1) * b, dtype=np.uint32)
            lsm.insert(keys, keys)
        assert lsm.stale_fraction_estimate() == 0.0

    def test_deletions_still_count_as_stale(self, device):
        b = 8
        lsm = GPULSM(config=LSMConfig(batch_size=b), device=device)
        keys = np.arange(b, dtype=np.uint32)
        lsm.insert(keys, keys)
        lsm.delete(keys)
        # All 16 resident elements are stale (8 deleted + 8 tombstones).
        assert lsm.stale_fraction_estimate() == 1.0

    def test_cleanup_resets_the_estimate_despite_padding(self, device):
        # Regression: padding placebos used to be counted as stale
        # (``_live_keys_upper_bound = num_valid`` while ``num_elements``
        # includes the padding), so a threshold policy re-triggered
        # cleanup forever with zero reclaim.  The irreducible trailing
        # placebos are now excluded: right after a cleanup the estimate
        # is exactly 0.0, padding or not.
        b = 8
        lsm = GPULSM(config=LSMConfig(batch_size=b), device=device)
        for i in range(4):
            lsm.insert(
                np.full(b, 7, dtype=np.uint32), np.full(b, i, dtype=np.uint32)
            )
        assert lsm.stale_fraction_estimate() > 0.5
        stats = lsm.cleanup()
        # One live element survives, padded up to one batch of placebos.
        assert lsm.num_elements == b
        assert stats["padding"] == b - 1
        assert lsm.stale_fraction_estimate() == 0.0

    def test_threshold_policy_cannot_retrigger_on_pure_padding(self, device):
        from repro.core.maintenance import StaleFractionPolicy

        b = 8
        lsm = GPULSM(
            config=LSMConfig(
                batch_size=b,
                maintenance_policy=StaleFractionPolicy(threshold=0.3),
            ),
            device=device,
        )
        for i in range(4):
            lsm.insert(
                np.full(b, 7, dtype=np.uint32), np.full(b, i, dtype=np.uint32)
            )
        assert lsm.run_due_maintenance() is not None   # genuine staleness
        # Padding > 0 survives the cleanup, yet nothing further is due.
        assert lsm.num_elements == b
        assert lsm.run_due_maintenance() is None

    def test_placebos_count_again_once_a_cascade_merges_them(self, device):
        b = 8
        lsm = GPULSM(config=LSMConfig(batch_size=b), device=device)
        for i in range(4):
            lsm.insert(
                np.full(b, 7, dtype=np.uint32), np.full(b, i, dtype=np.uint32)
            )
        lsm.cleanup()
        assert lsm.stale_fraction_estimate() == 0.0
        # Cascades that merge the padded level fold the placebos into
        # ordinary (reclaimable) stale data: the estimate must see them.
        for i in range(3):
            lsm.insert(
                np.arange(i * b, (i + 1) * b, dtype=np.uint32),
                np.zeros(b, dtype=np.uint32),
            )
        # 4 batches resident, 1 + 24 live elements: the 7 old placebos are
        # stale again.
        assert lsm.stale_fraction_estimate() == pytest.approx(7 / 32)

    def test_bulk_build_duplicates_feed_the_bound(self, device):
        b = 8
        lsm = GPULSM(config=LSMConfig(batch_size=b), device=device, key_only=True)
        lsm.bulk_build(np.full(2 * b, 3, dtype=np.uint32))
        # 16 resident copies of one key: 15 stale.
        assert lsm.stale_fraction_estimate() >= 0.8


class TestNegativeQueryKeyValidation:
    """Negative query keys must raise, not silently wrap into huge words."""

    NEG = np.array([5, -3], dtype=np.int64)
    NEG_HI = np.array([9, 9], dtype=np.int64)

    def _filled_lsm(self, device):
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=device)
        lsm.insert(np.arange(8, dtype=np.uint32), np.arange(8, dtype=np.uint32))
        return lsm

    def test_lsm_lookup_rejects_negative_keys(self, device):
        lsm = self._filled_lsm(device)
        with pytest.raises(ValueError, match="non-negative"):
            lsm.lookup(self.NEG)

    def test_lsm_count_rejects_negative_bounds(self, device):
        lsm = self._filled_lsm(device)
        with pytest.raises(ValueError, match="non-negative"):
            lsm.count(self.NEG, self.NEG_HI)
        with pytest.raises(ValueError, match="non-negative"):
            lsm.count(np.zeros(2, np.int64), self.NEG)

    def test_lsm_range_rejects_negative_bounds(self, device):
        lsm = self._filled_lsm(device)
        with pytest.raises(ValueError, match="non-negative"):
            lsm.range_query(self.NEG, self.NEG_HI)

    def test_sharded_lookup_and_ranges_reject_negative_keys(self):
        sharded = ShardedLSM(num_shards=2, batch_size=16, key_domain=1 << 10)
        sharded.insert(np.arange(8, dtype=np.uint32), np.arange(8, dtype=np.uint32))
        with pytest.raises(ValueError):
            sharded.lookup(self.NEG)
        with pytest.raises(ValueError, match="non-negative"):
            sharded.count(self.NEG, self.NEG_HI)
        with pytest.raises(ValueError, match="non-negative"):
            sharded.range_query(self.NEG, self.NEG_HI)

    def test_sorted_array_rejects_negative_keys(self, device):
        sa = GPUSortedArray(device=device)
        sa.bulk_build(np.arange(8, dtype=np.uint32), np.arange(8, dtype=np.uint32))
        with pytest.raises(ValueError, match="non-negative"):
            sa.lookup(self.NEG)
        with pytest.raises(ValueError, match="non-negative"):
            sa.count(self.NEG, self.NEG_HI)
        with pytest.raises(ValueError, match="non-negative"):
            sa.range_query(self.NEG, self.NEG_HI)

    def test_cuckoo_lookup_rejects_negative_keys(self, device):
        cuckoo = CuckooHashTable(device=device)
        cuckoo.bulk_build(
            np.arange(8, dtype=np.uint64), np.arange(8, dtype=np.uint64)
        )
        with pytest.raises(ValueError, match="non-negative"):
            cuckoo.lookup(self.NEG)

    def test_fractional_negative_float_keys_rejected(self, device):
        # int(-0.5) == 0, so a truncating check would let these through.
        lsm = self._filled_lsm(device)
        with pytest.raises(ValueError, match="non-negative"):
            lsm.lookup(np.array([-0.5]))

    def test_valid_queries_still_work_after_validation(self, device):
        lsm = self._filled_lsm(device)
        res = lsm.lookup(np.array([5, 200], dtype=np.int64))
        assert bool(res.found[0]) and not bool(res.found[1])
        assert int(lsm.count(np.array([0]), np.array([7]))[0]) == 8
