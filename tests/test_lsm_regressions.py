"""Regression tests for fixed GPU LSM edge cases.

* ``bulk_build`` must validate its keys against the encoder's 31-bit
  original-key domain up front, like lookup and the range queries already
  do, instead of relying on downstream encode behaviour.
* ``stale_fraction_estimate`` must not be fooled by duplicate-key
  re-insertions: repeatedly inserting the same key inflates the lifetime
  insertion counter without growing the live population, which used to
  drive the estimate to zero exactly when almost everything was stale.
"""

import numpy as np
import pytest

from repro.core.config import LSMConfig
from repro.core.lsm import GPULSM


class TestBulkBuildDomainValidation:
    def test_out_of_domain_key_rejected(self, device):
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=device)
        keys = np.array([1, 2, 1 << 31], dtype=np.uint64)
        values = np.zeros(3, dtype=np.uint32)
        with pytest.raises(ValueError, match="original-key domain"):
            lsm.bulk_build(keys, values)
        # The failed build must not leave partial state behind.
        assert lsm.num_batches == 0 and lsm.num_elements == 0

    def test_negative_key_rejected(self, device):
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=device, key_only=True)
        with pytest.raises(ValueError, match="original-key domain"):
            lsm.bulk_build(np.array([3, -1], dtype=np.int64))

    def test_max_key_accepted(self, device):
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=device, key_only=True)
        lsm.bulk_build(np.array([0, (1 << 31) - 1], dtype=np.uint64))
        res = lsm.lookup(np.array([(1 << 31) - 1], dtype=np.uint64))
        assert bool(res.found[0])


class TestStaleFractionEstimate:
    def test_duplicate_reinsertions_do_not_zero_the_estimate(self, device):
        b = 8
        lsm = GPULSM(config=LSMConfig(batch_size=b), device=device)
        # The same single key re-inserted for 8 full batches: 64 resident
        # elements of which exactly one is live.
        for i in range(8):
            lsm.insert(
                np.full(b, 42, dtype=np.uint32), np.full(b, i, dtype=np.uint32)
            )
        assert lsm.num_elements == 64
        estimate = lsm.stale_fraction_estimate()
        # True stale fraction is 63/64; the estimate must not undershoot
        # grossly (the pre-fix value here was 0.0).
        assert estimate >= 0.8

    def test_unique_insertions_report_no_staleness(self, device):
        b = 8
        lsm = GPULSM(config=LSMConfig(batch_size=b), device=device)
        for i in range(4):
            keys = np.arange(i * b, (i + 1) * b, dtype=np.uint32)
            lsm.insert(keys, keys)
        assert lsm.stale_fraction_estimate() == 0.0

    def test_deletions_still_count_as_stale(self, device):
        b = 8
        lsm = GPULSM(config=LSMConfig(batch_size=b), device=device)
        keys = np.arange(b, dtype=np.uint32)
        lsm.insert(keys, keys)
        lsm.delete(keys)
        # All 16 resident elements are stale (8 deleted + 8 tombstones).
        assert lsm.stale_fraction_estimate() == 1.0

    def test_cleanup_resets_the_estimate(self, device):
        b = 8
        lsm = GPULSM(config=LSMConfig(batch_size=b), device=device)
        for i in range(4):
            lsm.insert(
                np.full(b, 7, dtype=np.uint32), np.full(b, i, dtype=np.uint32)
            )
        assert lsm.stale_fraction_estimate() > 0.5
        lsm.cleanup()
        # One live element survives, padded up to one batch of placebos.
        assert lsm.num_elements == b
        # Post-cleanup the estimate reflects only the padding placebos.
        assert lsm.stale_fraction_estimate() == pytest.approx((b - 1) / b)

    def test_bulk_build_duplicates_feed_the_bound(self, device):
        b = 8
        lsm = GPULSM(config=LSMConfig(batch_size=b), device=device, key_only=True)
        lsm.bulk_build(np.full(2 * b, 3, dtype=np.uint32))
        # 16 resident copies of one key: 15 stale.
        assert lsm.stale_fraction_estimate() >= 0.8
