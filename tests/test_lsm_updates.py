"""Unit tests for GPU LSM insertion, deletion and bulk build."""

import numpy as np
import pytest

from repro.core.config import LSMConfig
from repro.core.invariants import check_lsm_invariants
from repro.core.lsm import GPULSM


def _lsm(device, b=16, **kwargs):
    cfg = LSMConfig(batch_size=b, validate_invariants=True, **kwargs)
    return GPULSM(config=cfg, device=device)


class TestInsertion:
    def test_first_batch_fills_level_zero(self, device):
        lsm = _lsm(device)
        lsm.insert(np.arange(16, dtype=np.uint32), np.arange(16, dtype=np.uint32))
        assert lsm.num_batches == 1
        assert lsm.levels[0].is_full
        assert lsm.num_elements == 16

    def test_second_batch_merges_into_level_one(self, device):
        lsm = _lsm(device)
        for i in range(2):
            lsm.insert(np.arange(16, dtype=np.uint32) + i * 100,
                       np.arange(16, dtype=np.uint32))
        assert lsm.num_batches == 2
        assert lsm.levels[0].is_empty
        assert lsm.levels[1].is_full
        assert lsm.levels[1].size == 32

    def test_occupied_levels_match_binary_representation(self, device, rng):
        lsm = _lsm(device, b=8)
        for r in range(1, 14):
            lsm.insert(rng.integers(0, 10000, 8, dtype=np.uint32),
                       rng.integers(0, 100, 8, dtype=np.uint32))
            occupied = {lvl.index for lvl in lsm.occupied_levels()}
            expected = {i for i in range(10) if (r >> i) & 1}
            assert occupied == expected, r

    def test_levels_stay_key_sorted(self, device, rng):
        lsm = _lsm(device, b=32)
        for _ in range(7):
            lsm.insert(rng.integers(0, 1 << 20, 32, dtype=np.uint32),
                       rng.integers(0, 100, 32, dtype=np.uint32))
        for lvl in lsm.occupied_levels():
            orig = lsm.encoder.decode_key(lvl.keys)
            assert np.all(np.diff(orig.astype(np.int64)) >= 0)

    def test_partial_batch_padding(self, device):
        lsm = _lsm(device, b=16)
        lsm.insert(np.array([5, 9], dtype=np.uint32), np.array([50, 90], dtype=np.uint32))
        assert lsm.num_elements == 16  # padded to a full batch
        res = lsm.lookup(np.array([5, 9], dtype=np.uint32))
        assert res.found.all()
        assert list(res.values) == [50, 90]

    def test_num_elements_is_multiple_of_batch(self, device, rng):
        lsm = _lsm(device, b=8)
        for _ in range(5):
            lsm.insert(rng.integers(0, 100, 8, dtype=np.uint32),
                       rng.integers(0, 100, 8, dtype=np.uint32))
            assert lsm.num_elements % 8 == 0

    def test_oversized_batch_rejected(self, device):
        lsm = _lsm(device, b=8)
        with pytest.raises(ValueError):
            lsm.insert(np.arange(9, dtype=np.uint32), np.arange(9, dtype=np.uint32))

    def test_key_domain_enforced(self, device):
        lsm = _lsm(device, b=8)
        with pytest.raises(ValueError):
            lsm.insert(np.array([1 << 31], dtype=np.uint64),
                       np.array([1], dtype=np.uint32))

    def test_overflow_guard(self, device):
        cfg = LSMConfig(batch_size=2, max_levels=2)
        lsm = GPULSM(config=cfg, device=device)
        for i in range(3):
            lsm.insert(np.array([i, i + 10], dtype=np.uint32),
                       np.array([0, 0], dtype=np.uint32))
        with pytest.raises(OverflowError):
            lsm.insert(np.array([99, 98], dtype=np.uint32),
                       np.array([0, 0], dtype=np.uint32))

    def test_key_only_mode(self, device):
        cfg = LSMConfig(batch_size=8, validate_invariants=True)
        lsm = GPULSM(config=cfg, device=device, key_only=True)
        lsm.insert(np.arange(8, dtype=np.uint32))
        res = lsm.lookup(np.array([3, 100], dtype=np.uint32))
        assert res.values is None
        assert bool(res.found[0]) and not bool(res.found[1])

    def test_insertion_counters(self, device):
        lsm = _lsm(device, b=8)
        lsm.insert(np.arange(8, dtype=np.uint32), np.arange(8, dtype=np.uint32))
        lsm.delete(np.arange(4, dtype=np.uint32))
        assert lsm.total_insertions == 8
        assert lsm.total_deletions == 4


class TestDeletion:
    def test_deleted_key_not_found(self, device):
        lsm = _lsm(device, b=8)
        lsm.insert(np.arange(8, dtype=np.uint32), np.arange(8, dtype=np.uint32) * 2)
        lsm.delete(np.array([3], dtype=np.uint32))
        res = lsm.lookup(np.array([3, 4], dtype=np.uint32))
        assert not res.found[0]
        assert res.found[1] and res.values[1] == 8

    def test_delete_then_reinsert(self, device):
        lsm = _lsm(device, b=8)
        lsm.insert(np.arange(8, dtype=np.uint32), np.full(8, 1, dtype=np.uint32))
        lsm.delete(np.array([5], dtype=np.uint32))
        lsm.insert(np.array([5], dtype=np.uint32), np.array([42], dtype=np.uint32))
        res = lsm.lookup(np.array([5], dtype=np.uint32))
        assert res.found[0] and res.values[0] == 42

    def test_delete_nonexistent_key_is_harmless(self, device):
        lsm = _lsm(device, b=8)
        lsm.insert(np.arange(8, dtype=np.uint32), np.arange(8, dtype=np.uint32))
        lsm.delete(np.array([1000], dtype=np.uint32))
        res = lsm.lookup(np.arange(8, dtype=np.uint32))
        assert res.found.all()

    def test_mixed_batch_insert_and_delete_same_key_means_deleted(self, device):
        lsm = _lsm(device, b=8)
        lsm.insert(np.arange(8, dtype=np.uint32), np.arange(8, dtype=np.uint32))
        # One batch that both re-inserts key 2 and deletes it: rule 6.
        lsm.update(
            insert_keys=np.array([2], dtype=np.uint32),
            insert_values=np.array([99], dtype=np.uint32),
            delete_keys=np.array([2], dtype=np.uint32),
        )
        assert not lsm.lookup(np.array([2], dtype=np.uint32)).found[0]

    def test_deletion_performance_equals_insertion(self, device, rng):
        # Paper: "performance does not depend on status bits" — the same
        # batch of tombstones generates the same traffic as insertions.
        lsm = _lsm(device, b=64)
        keys = rng.integers(0, 10000, 64, dtype=np.uint32)
        before = device.snapshot()
        lsm.insert(keys, np.zeros(64, dtype=np.uint32))
        insert_traffic = device.counter.since(before).total_bytes

        lsm2 = _lsm(device, b=64)
        before = device.snapshot()
        lsm2.delete(keys)
        delete_traffic = device.counter.since(before).total_bytes
        assert delete_traffic == insert_traffic


class TestReplacement:
    def test_latest_value_wins_across_batches(self, device):
        lsm = _lsm(device, b=8)
        lsm.insert(np.arange(8, dtype=np.uint32), np.full(8, 1, dtype=np.uint32))
        lsm.insert(np.arange(8, dtype=np.uint32), np.full(8, 2, dtype=np.uint32))
        res = lsm.lookup(np.arange(8, dtype=np.uint32))
        assert np.all(res.values == 2)

    def test_duplicate_in_same_batch_first_wins(self, device):
        lsm = _lsm(device, b=8)
        keys = np.array([7, 7, 7, 7, 1, 2, 3, 4], dtype=np.uint32)
        vals = np.array([10, 20, 30, 40, 0, 0, 0, 0], dtype=np.uint32)
        lsm.insert(keys, vals)
        res = lsm.lookup(np.array([7], dtype=np.uint32))
        assert res.found[0] and res.values[0] == 10

    def test_stale_elements_remain_physically_present(self, device):
        lsm = _lsm(device, b=8)
        lsm.insert(np.arange(8, dtype=np.uint32), np.zeros(8, dtype=np.uint32))
        lsm.insert(np.arange(8, dtype=np.uint32), np.ones(8, dtype=np.uint32))
        # 16 resident elements even though only 8 keys are live.
        assert lsm.num_elements == 16


class TestBulkBuild:
    def test_matches_incremental_queries(self, device, rng):
        keys = rng.choice(1 << 20, 64, replace=False).astype(np.uint32)
        values = rng.integers(0, 1000, 64, dtype=np.uint32)
        bulk = _lsm(device, b=8)
        bulk.bulk_build(keys, values)
        incremental = _lsm(device, b=8)
        for i in range(0, 64, 8):
            incremental.insert(keys[i:i + 8], values[i:i + 8])
        queries = np.concatenate([keys[:10], np.array([1 << 22], dtype=np.uint32)])
        rb = bulk.lookup(queries)
        ri = incremental.lookup(queries)
        assert np.array_equal(rb.found, ri.found)
        assert np.array_equal(rb.values[rb.found], ri.values[ri.found])

    def test_number_of_batches(self, device, rng):
        lsm = _lsm(device, b=8)
        lsm.bulk_build(rng.integers(0, 1000, 40, dtype=np.uint32),
                       rng.integers(0, 1000, 40, dtype=np.uint32))
        assert lsm.num_batches == 5
        check_lsm_invariants(lsm)

    def test_pads_non_multiple_input(self, device, rng):
        lsm = _lsm(device, b=8)
        lsm.bulk_build(rng.integers(0, 1000, 13, dtype=np.uint32),
                       rng.integers(0, 1000, 13, dtype=np.uint32))
        assert lsm.num_batches == 2
        assert lsm.num_elements == 16

    def test_requires_empty_lsm(self, device):
        lsm = _lsm(device, b=8)
        lsm.insert(np.arange(8, dtype=np.uint32), np.arange(8, dtype=np.uint32))
        with pytest.raises(RuntimeError):
            lsm.bulk_build(np.arange(8, dtype=np.uint32), np.arange(8, dtype=np.uint32))

    def test_requires_values_unless_key_only(self, device):
        lsm = _lsm(device, b=8)
        with pytest.raises(ValueError):
            lsm.bulk_build(np.arange(8, dtype=np.uint32))

    def test_bulk_build_cheaper_than_incremental(self, device, rng):
        keys = rng.choice(1 << 20, 128, replace=False).astype(np.uint32)
        values = rng.integers(0, 100, 128, dtype=np.uint32)
        before = device.snapshot()
        bulk = _lsm(device, b=8)
        bulk.bulk_build(keys, values)
        bulk_traffic = device.counter.since(before).total_bytes

        before = device.snapshot()
        inc = _lsm(device, b=8)
        for i in range(0, 128, 8):
            inc.insert(keys[i:i + 8], values[i:i + 8])
        inc_traffic = device.counter.since(before).total_bytes
        assert bulk_traffic < inc_traffic


class TestMemoryAndIntrospection:
    def test_memory_usage_tracks_levels(self, device, rng):
        lsm = _lsm(device, b=8)
        assert lsm.memory_usage_bytes == 0
        lsm.insert(rng.integers(0, 100, 8, dtype=np.uint32),
                   rng.integers(0, 100, 8, dtype=np.uint32))
        assert lsm.memory_usage_bytes == 8 * 8  # keys + values, 4 bytes each

    def test_len_and_repr(self, device):
        lsm = _lsm(device, b=8)
        lsm.insert(np.arange(8, dtype=np.uint32), np.arange(8, dtype=np.uint32))
        assert len(lsm) == 8
        assert "GPULSM" in repr(lsm)

    def test_stale_fraction_estimate(self, device):
        lsm = _lsm(device, b=8)
        lsm.insert(np.arange(8, dtype=np.uint32), np.arange(8, dtype=np.uint32))
        assert lsm.stale_fraction_estimate() == 0.0
        # Deleting everything leaves 16 resident elements, none of them live.
        lsm.delete(np.arange(8, dtype=np.uint32))
        assert lsm.stale_fraction_estimate() == pytest.approx(1.0)
