"""Hypothesis kill-and-restart oracle: recovery loses nothing acknowledged.

Random insert / delete / lookup tick traces drive an engine with
durability on and a :class:`~repro.durability.faults.FaultInjector` armed
at a random crash point (``wal.mid_append``, ``wal.pre_fsync``,
``snapshot.mid_write``, ``snapshot.pre_rename``).  When the injected
crash fires, the run stops where a killed process would; a **fresh**
backend is then recovered from the directory and compared against a
plain-dict oracle folding the committed prefix of the trace with each
tick's recorded consistency semantics (snapshot mode: a delete dominates
its tick, the first insert of a key wins; strict mode: arrival order).

The durability contract checked on every trace, on both the single
:class:`GPULSM` and the four-shard :class:`ShardedLSM`:

* every **acknowledged** tick (``apply`` returned) survives recovery;
* recovery never invents ticks (committed count <= ticks attempted) and
  replay stops exactly at a torn record;
* the recovered store keeps serving: one more tick applies cleanly and
  tick numbering continues.

A separate case truncates the WAL at an arbitrary byte (the torn final
record a crash mid-append leaves) and demands the longest valid prefix.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api.ops import OpBatch, OpCode
from repro.api.planner import Consistency
from repro.core.lsm import GPULSM
from repro.durability.faults import FAULT_POINTS, FaultInjector, InjectedCrash
from repro.durability.manager import DurabilityConfig
from repro.durability.recovery import WAL_FILENAME, recover
from repro.durability.snapshot import EveryNTicks
from repro.gpu.device import Device
from repro.gpu.spec import K40C_SPEC
from repro.scale import ShardedLSM
from repro.serve.engine import Engine

KEY_SPACE = 24
BATCH = 16

key_strategy = st.integers(min_value=0, max_value=KEY_SPACE - 1)
op_strategy = st.one_of(
    st.tuples(st.just("insert"), key_strategy, st.integers(0, 99)),
    st.tuples(st.just("delete"), key_strategy, st.just(0)),
    st.tuples(st.just("lookup"), key_strategy, st.just(0)),
)
tick_strategy = st.tuples(
    st.lists(op_strategy, min_size=1, max_size=6),
    st.booleans(),  # strict consistency?
)
trace_strategy = st.lists(tick_strategy, min_size=1, max_size=8)


def _make_backend(kind):
    if kind == "gpulsm":
        return GPULSM(batch_size=BATCH, device=Device(K40C_SPEC, seed=23))
    return ShardedLSM(
        num_shards=4, batch_size=BATCH, key_domain=KEY_SPACE, seed=23
    )


def _tick_batch(ops):
    rows = {
        "insert": OpCode.INSERT,
        "delete": OpCode.DELETE,
        "lookup": OpCode.LOOKUP,
    }
    opcodes = np.array([rows[kind] for kind, _, _ in ops], dtype=np.uint8)
    keys = np.array([k for _, k, _ in ops], dtype=np.uint64)
    values = np.array([v for _, _, v in ops], dtype=np.uint64)
    return OpBatch(opcodes, keys, values, np.zeros(len(ops), dtype=np.uint64))


def _fold_tick(oracle, ops, strict):
    """Fold one tick's updates into the dict oracle.

    Mirrors the planner's canonicalisation (Section III-A rules 4 and 6):
    snapshot mode — a DELETE dominates the whole tick and among INSERTs of
    one key the first wins; strict mode — arrival order, last op wins.
    """
    updates = [(kind, k, v) for kind, k, v in ops if kind != "lookup"]
    if strict:
        for kind, k, v in updates:
            if kind == "insert":
                oracle[k] = v
            else:
                oracle.pop(k, None)
        return
    deleted = {k for kind, k, _ in updates if kind == "delete"}
    for k in deleted:
        oracle.pop(k, None)
    seen = set()
    for kind, k, v in updates:
        if kind == "insert" and k not in seen:
            seen.add(k)
            if k not in deleted:
                oracle[k] = v


def _assert_matches_oracle(backend, oracle, context):
    probe = np.arange(KEY_SPACE, dtype=np.uint64)
    result = backend.lookup(probe)
    for k in range(KEY_SPACE):
        expected = oracle.get(k)
        if expected is None:
            assert not result.found[k], (
                f"{context}: key {k} recovered but was never durable"
            )
        else:
            assert result.found[k], f"{context}: durable key {k} lost"
            assert int(result.values[k]) == expected, (
                f"{context}: key {k} recovered value "
                f"{int(result.values[k])}, oracle {expected}"
            )


@pytest.mark.parametrize("kind", ["gpulsm", "sharded4"])
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    trace=trace_strategy,
    point=st.sampled_from(FAULT_POINTS),
    hit=st.integers(min_value=1, max_value=4),
    fsync_batch=st.sampled_from([1, 2, 3]),
    snapshot_every=st.sampled_from([1, 2, 4]),
    data=st.data(),
)
def test_kill_and_restart_matches_oracle(
    tmp_path_factory, kind, trace, point, hit, fsync_batch, snapshot_every, data
):
    directory = str(tmp_path_factory.mktemp("durability"))
    faults = FaultInjector({point: hit})
    engine = Engine(
        _make_backend(kind),
        durability=DurabilityConfig(
            directory=directory,
            fsync_every_n_ticks=fsync_batch,
            snapshot_policy=EveryNTicks(snapshot_every),
            fault_injector=faults,
        ),
    )

    oracle = {}
    acked = 0
    attempted = 0
    crashed = False
    for ops, strict in trace:
        mode = Consistency.STRICT if strict else Consistency.SNAPSHOT
        attempted += 1
        try:
            engine.apply(_tick_batch(ops), consistency=mode)
        except InjectedCrash:
            crashed = True
            break
        acked += 1
        _fold_tick(oracle, ops, strict)
    # Closing after the "kill" only releases file handles: every append
    # already flushed, so the bytes recovery sees are the crash's bytes.
    try:
        engine.close()
    except InjectedCrash:
        pass

    recovered = _make_backend(kind)
    report = recover(directory, recovered)

    # Committed ticks bracket: nothing acknowledged is lost, nothing
    # unattempted is invented.
    assert acked <= report.ticks <= attempted, (
        f"acked {acked}, recovered {report.ticks}, attempted {attempted} "
        f"(crash point {faults.crashed or 'none fired'})"
    )
    if crashed and faults.crashed == "wal.mid_append":
        # The killed append left a torn record and no acknowledgement.
        assert report.ticks == acked
        assert report.wal_torn

    # The oracle holds the fold of exactly the committed prefix.
    committed_oracle = {}
    for ops, strict in trace[: report.ticks]:
        _fold_tick(committed_oracle, ops, strict)
    _assert_matches_oracle(
        recovered,
        committed_oracle,
        f"{kind}/{faults.crashed or 'no-crash'}",
    )

    # A restarted engine (fresh backend, same directory) recovers the
    # same history and keeps serving with continuing tick numbering.
    resumed_backend = _make_backend(kind)
    resumed = Engine(
        resumed_backend,
        durability=DurabilityConfig(
            directory=directory, fsync_every_n_ticks=1
        ),
    )
    assert resumed.durability.ticks == report.ticks
    extra_key = data.draw(key_strategy, label="post-recovery insert key")
    resumed.apply(
        OpBatch.inserts(
            np.array([extra_key], dtype=np.uint64),
            np.array([7], dtype=np.uint64),
        )
    )
    committed_oracle[extra_key] = 7
    resumed.close()
    assert resumed.durability.ticks == report.ticks + 1
    _assert_matches_oracle(
        resumed_backend, committed_oracle, f"{kind}/resumed"
    )


@pytest.mark.parametrize("kind", ["gpulsm", "sharded4"])
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(trace=trace_strategy, cut_fraction=st.floats(0.0, 1.0))
def test_torn_final_record_via_truncation(
    tmp_path_factory, kind, trace, cut_fraction
):
    """Truncating the WAL anywhere recovers the longest valid prefix."""
    directory = str(tmp_path_factory.mktemp("torn"))
    engine = Engine(
        _make_backend(kind),
        durability=DurabilityConfig(directory=directory),
    )
    boundaries = [0]
    for ops, strict in trace:
        mode = Consistency.STRICT if strict else Consistency.SNAPSHOT
        engine.apply(_tick_batch(ops), consistency=mode)
        boundaries.append(engine.durability.stats()["wal_end_offset"])
    engine.close()

    wal_path = os.path.join(directory, WAL_FILENAME)
    size = os.path.getsize(wal_path)
    assert size == boundaries[-1]
    cut = round(cut_fraction * size)
    with open(wal_path, "r+b") as fh:
        fh.truncate(cut)

    # The longest record boundary at or before the cut is what survives.
    surviving = max(i for i, off in enumerate(boundaries) if off <= cut)

    recovered = _make_backend(kind)
    report = recover(directory, recovered)
    assert report.ticks == surviving
    assert report.wal_torn == (cut != boundaries[surviving])
    oracle = {}
    for ops, strict in trace[:surviving]:
        _fold_tick(oracle, ops, strict)
    _assert_matches_oracle(recovered, oracle, f"{kind}/truncated@{cut}")


# ---------------------------------------------------------------------- #
# Kill during an online shard rebalance
# ---------------------------------------------------------------------- #
def _sharded_rebalancing_backend():
    from repro.scale.rebalance import LoadImbalancePolicy

    return ShardedLSM(
        num_shards=4,
        batch_size=BATCH,
        key_domain=KEY_SPACE,
        seed=23,
        rebalance_policy=LoadImbalancePolicy(
            imbalance_threshold=1.2, min_traffic=1, cooldown_ticks=0
        ),
        max_shards=4,
    )


def _skewed_tick(rng):
    """A read-mostly tick whose point traffic pins the lowest shard."""
    ops = [("insert", int(rng.integers(0, 6)), int(rng.integers(0, 99)))]
    ops += [("lookup", int(rng.integers(0, 6)), 0) for _ in range(7)]
    return ops


def test_kill_during_rebalance_migration_matches_oracle(tmp_path):
    """A crash between the merge and split halves of a rebalance pass
    (``rebalance.mid_migrate``) fires *after* the triggering tick
    committed — the engine polls maintenance post-commit — so recovery
    must replay every committed tick onto a fresh backend and agree with
    the oracle, whatever partition the half-finished pass left behind."""
    directory = str(tmp_path)
    backend = _sharded_rebalancing_backend()
    backend.fault_injector = FaultInjector({"rebalance.mid_migrate": 1})
    engine = Engine(
        backend,
        durability=DurabilityConfig(directory=directory, fsync_every_n_ticks=1),
    )
    rng = np.random.default_rng(5)
    oracle = {}
    committed = 0
    crashed = False
    for _ in range(12):
        ops = _skewed_tick(rng)
        try:
            engine.apply(_tick_batch(ops))
        except InjectedCrash:
            # The tick itself committed (WAL append + fsync precede the
            # maintenance poll); only the acknowledgement was lost.
            committed += 1
            _fold_tick(oracle, ops, strict=False)
            crashed = True
            break
        committed += 1
        _fold_tick(oracle, ops, strict=False)
    assert crashed, "the mid-migrate fault point never fired"
    assert backend.fault_injector.crashed == "rebalance.mid_migrate"
    try:
        engine.close()
    except InjectedCrash:
        pass

    recovered_backend = ShardedLSM(
        num_shards=4, batch_size=BATCH, key_domain=KEY_SPACE, seed=23
    )
    report = recover(directory, recovered_backend)
    assert report.ticks == committed
    _assert_matches_oracle(recovered_backend, oracle, "kill-mid-migrate")


def test_snapshot_after_rebalance_restores_boundaries(tmp_path):
    """A snapshot committed after a rebalance records the moved shard
    boundaries; recovery restores them exactly (not the uniform default)
    and still agrees with a live replica fed the same stream."""
    directory = str(tmp_path)
    backend = _sharded_rebalancing_backend()
    engine = Engine(
        backend,
        durability=DurabilityConfig(
            directory=directory,
            fsync_every_n_ticks=1,
            snapshot_policy=EveryNTicks(1),
        ),
    )
    rng = np.random.default_rng(5)
    oracle = {}
    for _ in range(8):
        ops = _skewed_tick(rng)
        engine.apply(_tick_batch(ops))
        _fold_tick(oracle, ops, strict=False)
    engine.close()
    reb = backend.rebalance_stats()
    assert reb["rebalance_runs"] >= 1, "the skewed stream never rebalanced"
    assert backend.shard_bounds != ShardedLSM(
        num_shards=4, batch_size=BATCH, key_domain=KEY_SPACE
    ).shard_bounds

    recovered_backend = ShardedLSM(
        num_shards=4, batch_size=BATCH, key_domain=KEY_SPACE, seed=23
    )
    report = recover(directory, recovered_backend)
    assert report.ticks == 8
    assert recovered_backend.shard_bounds == backend.shard_bounds
    assert recovered_backend.num_shards == backend.num_shards
    _assert_matches_oracle(recovered_backend, oracle, "post-rebalance")
    # The recovered store keeps serving across the restored partition.
    res = recovered_backend.lookup(np.arange(KEY_SPACE, dtype=np.uint64))
    assert int(res.found.sum()) == len(oracle)
