"""Unit tests for the SortedRun column-set abstraction.

Every GPU LSM operation is expressed over :class:`SortedRun`; these tests
pin down the abstraction itself: single-dispatch to the keys/pairs
primitive variants, value-column alignment, immutability, and the
slice/pad/compact helpers the cascade and cleanup rely on.
"""

import numpy as np
import pytest

from repro.core.encoding import KeyEncoder
from repro.core.run import SortedRun

ENC = KeyEncoder(np.dtype(np.uint32))


def make_run(keys, values=None):
    keys = np.asarray(keys, dtype=np.uint32)
    if values is not None:
        values = np.asarray(values, dtype=np.uint32)
    return SortedRun(keys, values)


class TestConstruction:
    def test_basic_properties(self):
        run = make_run([3, 1, 2], [30, 10, 20])
        assert run.size == 3 and len(run) == 3
        assert run.has_values
        assert run.nbytes == 3 * 8
        assert run.itemsize == 8

    def test_key_only_properties(self):
        run = make_run([3, 1, 2])
        assert not run.has_values
        assert run.nbytes == 12
        assert run.itemsize == 4

    def test_misaligned_values_rejected(self):
        with pytest.raises(ValueError, match="match the key column"):
            make_run([1, 2, 3], [1, 2])

    def test_two_dimensional_keys_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            SortedRun(np.zeros((2, 2), dtype=np.uint32))

    def test_runs_are_immutable(self):
        run = make_run([1, 2])
        with pytest.raises(AttributeError):
            run.keys = np.zeros(2, dtype=np.uint32)


class TestBulkOperations:
    def test_sort_dispatches_pairs(self, device):
        run = make_run([5, 1, 9, 3], [50, 10, 90, 30]).sort(device=device)
        assert list(run.keys) == [1, 3, 5, 9]
        assert list(run.values) == [10, 30, 50, 90]

    def test_sort_dispatches_keys_only(self, device):
        run = make_run([5, 1, 9, 3]).sort(device=device)
        assert list(run.keys) == [1, 3, 5, 9]
        assert run.values is None

    def test_merge_is_stable_a_first(self, device):
        a = make_run([2, 4], [20, 40])
        b = make_run([2, 3], [200, 300])
        merged = a.merge(b, device=device)
        assert list(merged.keys) == [2, 2, 3, 4]
        # A's element precedes B's among equal keys.
        assert list(merged.values) == [20, 200, 300, 40]

    def test_merge_mixed_value_presence_rejected(self, device):
        with pytest.raises(ValueError, match="key-only"):
            make_run([1]).merge(make_run([2], [20]), device=device)

    def test_multisplit_partitions_stably(self, device):
        run = make_run([4, 1, 3, 2], [40, 10, 30, 20])
        split, offsets = run.multisplit(
            lambda k: (np.asarray(k) % 2 == 0).astype(np.int64),
            num_buckets=2,
            device=device,
        )
        assert list(offsets) == [0, 2, 4]
        assert list(split.keys) == [1, 3, 4, 2]
        assert list(split.values) == [10, 30, 40, 20]

    def test_compact_keeps_masked_elements(self, device):
        run = make_run([1, 2, 3, 4], [10, 20, 30, 40])
        kept = run.compact(np.array([True, False, True, False]), device=device)
        assert list(kept.keys) == [1, 3]
        assert list(kept.values) == [10, 30]

    def test_compact_rejects_misaligned_mask(self, device):
        with pytest.raises(ValueError, match="mask"):
            make_run([1, 2]).compact(np.array([True]), device=device)

    def test_segmented_sort_sorts_per_segment(self, device):
        run = make_run([3, 1, 2, 9, 5], [30, 10, 20, 90, 50])
        offsets = np.array([0, 3], dtype=np.int64)
        out = run.segmented_sort(offsets, device=device)
        assert list(out.keys) == [1, 2, 3, 5, 9]
        assert list(out.values) == [10, 20, 30, 50, 90]

    def test_segmented_compact_tracks_offsets(self, device):
        run = make_run([1, 2, 3, 4], [10, 20, 30, 40])
        out, offsets = run.segmented_compact(
            np.array([True, False, False, True]),
            np.array([0, 2], dtype=np.int64),
            device=device,
        )
        assert list(out.keys) == [1, 4]
        assert list(out.values) == [10, 40]
        assert list(offsets) == [0, 1, 2]


class TestSliceAndPad:
    def test_slice_copies(self, device):
        run = make_run([1, 2, 3, 4], [10, 20, 30, 40])
        part = run.slice(1, 3)
        assert list(part.keys) == [2, 3]
        assert list(part.values) == [20, 30]
        part.keys[0] = 99  # the slice owns its storage
        assert run.keys[1] == 2

    def test_slice_bounds_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            make_run([1, 2]).slice(1, 3)

    def test_pad_fills_word_and_value(self, device):
        run = make_run([1, 2], [10, 20]).pad(
            4, fill_word=ENC.placebo_word, device=device
        )
        assert run.size == 4
        assert list(run.keys[2:]) == [ENC.placebo_word] * 2
        assert list(run.values[2:]) == [0, 0]

    def test_pad_noop_and_shrink_rejected(self, device):
        run = make_run([1, 2])
        assert run.pad(2, fill_word=0, device=device) is run
        with pytest.raises(ValueError, match="shrink"):
            run.pad(1, fill_word=0, device=device)

    def test_operations_record_device_traffic(self, device):
        before = device.simulated_seconds
        make_run([3, 1, 2], [1, 2, 3]).sort(device=device)
        assert device.simulated_seconds > before
