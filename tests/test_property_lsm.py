"""Property-based and stateful tests for the GPU LSM against the oracle.

A Hypothesis rule-based state machine drives the GPU LSM and the
ReferenceDictionary with the same randomly generated batches (insert,
delete, mixed, cleanup) and checks lookup/count/range agreement after every
step — this is the strongest correctness statement in the suite, covering
interleavings no hand-written test enumerates.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.config import LSMConfig
from repro.core.invariants import check_lsm_invariants
from repro.core.lsm import GPULSM
from repro.core.semantics import BatchOp, ReferenceDictionary
from repro.gpu.device import Device
from repro.gpu.spec import K40C_SPEC

BATCH = 8
KEY_SPACE = 64   # small on purpose: maximises duplicate/delete interactions

key_strategy = st.integers(min_value=0, max_value=KEY_SPACE - 1)
value_strategy = st.integers(min_value=0, max_value=1000)


class LSMComparison(RuleBasedStateMachine):
    """Drive GPULSM and ReferenceDictionary with identical batches."""

    def __init__(self):
        super().__init__()
        self.device = Device(K40C_SPEC, seed=0)
        self.lsm = GPULSM(
            config=LSMConfig(batch_size=BATCH, validate_invariants=True),
            device=self.device,
        )
        self.ref = ReferenceDictionary()

    # ------------------------------------------------------------------ #
    # Rules (operations)
    # ------------------------------------------------------------------ #
    @precondition(lambda self: self.lsm.num_batches < 60)
    @rule(keys=st.lists(key_strategy, min_size=1, max_size=BATCH),
          values=st.lists(value_strategy, min_size=BATCH, max_size=BATCH))
    def insert_batch(self, keys, values):
        keys = np.asarray(keys, dtype=np.uint32)
        values = np.asarray(values[: keys.size], dtype=np.uint32)
        self.lsm.insert(keys, values)
        self.ref.apply_batch(
            [BatchOp(False, int(k), int(v)) for k, v in zip(keys, values)]
        )

    @precondition(lambda self: self.lsm.num_batches < 60)
    @rule(keys=st.lists(key_strategy, min_size=1, max_size=BATCH))
    def delete_batch(self, keys):
        keys = np.asarray(keys, dtype=np.uint32)
        self.lsm.delete(keys)
        self.ref.apply_batch([BatchOp(True, int(k)) for k in keys])

    @precondition(lambda self: self.lsm.num_batches < 60)
    @rule(ins=st.lists(key_strategy, min_size=1, max_size=BATCH // 2),
          dels=st.lists(key_strategy, min_size=1, max_size=BATCH // 2),
          value=value_strategy)
    def mixed_batch(self, ins, dels, value):
        ins = np.asarray(ins, dtype=np.uint32)
        dels = np.asarray(dels, dtype=np.uint32)
        vals = np.full(ins.size, value, dtype=np.uint32)
        self.lsm.update(insert_keys=ins, insert_values=vals, delete_keys=dels)
        ops = [BatchOp(False, int(k), int(value)) for k in ins]
        ops += [BatchOp(True, int(k)) for k in dels]
        self.ref.apply_batch(ops)

    @precondition(lambda self: self.lsm.num_batches > 0)
    @rule()
    def cleanup(self):
        self.lsm.cleanup()

    # ------------------------------------------------------------------ #
    # Invariants (checked after every rule)
    # ------------------------------------------------------------------ #
    @invariant()
    def structure_is_well_formed(self):
        check_lsm_invariants(self.lsm)

    @invariant()
    def lookups_match_oracle(self):
        queries = np.arange(KEY_SPACE, dtype=np.uint32)
        res = self.lsm.lookup(queries)
        expected = self.ref.lookup(queries.tolist())
        for i, exp in enumerate(expected):
            if exp is None:
                assert not res.found[i]
            else:
                assert res.found[i] and int(res.values[i]) == exp

    @invariant()
    def counts_match_oracle(self):
        k1 = np.array([0, KEY_SPACE // 2, 10], dtype=np.uint32)
        k2 = np.array([KEY_SPACE - 1, KEY_SPACE - 1, 20], dtype=np.uint32)
        counts = self.lsm.count(k1, k2)
        for i in range(k1.size):
            assert counts[i] == self.ref.count(int(k1[i]), int(k2[i]))


LSMComparison.TestCase.settings = settings(
    max_examples=12, stateful_step_count=20, deadline=None
)
TestLSMAgainstOracleStateful = LSMComparison.TestCase


class TestLSMProperties:
    @settings(max_examples=25, deadline=None)
    @given(keys=st.lists(st.integers(min_value=0, max_value=2**31 - 1),
                         min_size=1, max_size=64, unique=True))
    def test_every_inserted_key_is_found(self, keys):
        device = Device(K40C_SPEC, seed=0)
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=device)
        keys = np.asarray(keys, dtype=np.uint32)
        values = (keys % 997).astype(np.uint32)
        for i in range(0, keys.size, 8):
            lsm.insert(keys[i:i + 8], values[i:i + 8])
        res = lsm.lookup(keys)
        assert res.found.all()
        assert np.array_equal(res.values, values)

    @settings(max_examples=25, deadline=None)
    @given(keys=st.lists(st.integers(min_value=0, max_value=1000),
                         min_size=1, max_size=48, unique=True),
           lo=st.integers(min_value=0, max_value=1000),
           width=st.integers(min_value=0, max_value=500))
    def test_count_equals_range_length(self, keys, lo, width):
        device = Device(K40C_SPEC, seed=0)
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=device)
        keys = np.asarray(keys, dtype=np.uint32)
        lsm.bulk_build(keys, keys)
        hi = min(lo + width, 2**31 - 1)
        k1 = np.array([lo], dtype=np.uint32)
        k2 = np.array([hi], dtype=np.uint32)
        counts = lsm.count(k1, k2)
        rres = lsm.range_query(k1, k2)
        rkeys, _ = rres.query_slice(0)
        assert counts[0] == rkeys.size
        assert counts[0] == np.count_nonzero((keys >= lo) & (keys <= hi))
        # Range results are sorted and within bounds.
        assert np.all(np.diff(rkeys.astype(np.int64)) > 0)
        assert np.all((rkeys >= lo) & (rkeys <= hi))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_cleanup_preserves_query_answers(self, seed):
        rng = np.random.default_rng(seed)
        device = Device(K40C_SPEC, seed=0)
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=device)
        ref = ReferenceDictionary()
        for _ in range(rng.integers(1, 6)):
            keys = rng.integers(0, 100, 8, dtype=np.uint32)
            vals = rng.integers(0, 100, 8, dtype=np.uint32)
            if rng.random() < 0.3:
                lsm.delete(keys)
                ref.delete_batch(keys.tolist())
            else:
                lsm.insert(keys, vals)
                ref.insert_batch(keys.tolist(), vals.tolist())
        queries = np.arange(110, dtype=np.uint32)
        before = lsm.lookup(queries)
        lsm.cleanup()
        after = lsm.lookup(queries)
        assert np.array_equal(before.found, after.found)
        assert np.array_equal(before.values[before.found], after.values[after.found])
