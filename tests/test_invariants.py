"""Unit tests for the invariant checkers (repro.core.invariants)."""

import numpy as np
import pytest

from repro.core.config import LSMConfig
from repro.core.encoding import KeyEncoder
from repro.core.invariants import (
    InvariantViolation,
    check_level_invariants,
    check_lsm_invariants,
)
from repro.core.level import Level
from repro.core.lsm import GPULSM
from repro.core.run import SortedRun


ENC = KeyEncoder(np.dtype(np.uint32))


class TestLevelInvariants:
    def test_empty_level_passes(self):
        check_level_invariants(Level(index=0, capacity=4), ENC)

    def test_sorted_full_level_passes(self):
        lvl = Level(index=0, capacity=4)
        lvl.fill(ENC.encode(np.array([1, 2, 3, 4], dtype=np.uint32), 1), None)
        check_level_invariants(lvl, ENC)

    def test_unsorted_level_fails(self):
        lvl = Level(index=0, capacity=4)
        lvl.fill(ENC.encode(np.array([4, 2, 3, 1], dtype=np.uint32), 1), None)
        with pytest.raises(InvariantViolation, match="not sorted"):
            check_level_invariants(lvl, ENC)

    def test_wrong_occupancy_fails(self):
        lvl = Level(index=0, capacity=4)
        # Bypass fill() to simulate a corrupted level.
        lvl.run = SortedRun(ENC.encode(np.array([1, 2, 3], dtype=np.uint32), 1))
        with pytest.raises(InvariantViolation, match="expected"):
            check_level_invariants(lvl, ENC)

    def test_value_length_mismatch_fails(self):
        lvl = Level(index=0, capacity=2)
        lvl.run = SortedRun(
            ENC.encode(np.array([1, 2], dtype=np.uint32), 1),
            np.array([5, 6], dtype=np.uint32),
        )
        # Corrupt the (frozen) run behind the constructor's validation.
        object.__setattr__(lvl.run, "values", np.array([5], dtype=np.uint32))
        with pytest.raises(InvariantViolation, match="values"):
            check_level_invariants(lvl, ENC)

    def test_equal_keys_different_status_allowed(self):
        lvl = Level(index=0, capacity=2)
        words = np.array([ENC.encode_scalar(7, 0), ENC.encode_scalar(7, 1)],
                         dtype=np.uint32)
        lvl.fill(words, None)
        check_level_invariants(lvl, ENC)


class TestLSMInvariants:
    def test_valid_structure_passes(self, device, rng):
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=device)
        for _ in range(5):
            lsm.insert(rng.integers(0, 1000, 8, dtype=np.uint32),
                       rng.integers(0, 100, 8, dtype=np.uint32))
        check_lsm_invariants(lsm)

    def test_corrupted_occupancy_detected(self, device, rng):
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=device)
        lsm.insert(rng.integers(0, 1000, 8, dtype=np.uint32),
                   rng.integers(0, 100, 8, dtype=np.uint32))
        lsm.num_batches = 2  # lie about the resident count
        with pytest.raises(InvariantViolation, match="binary representation"):
            check_lsm_invariants(lsm)

    def test_corrupted_level_content_detected(self, device, rng):
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=device)
        lsm.insert(rng.integers(0, 1000, 8, dtype=np.uint32),
                   rng.integers(0, 100, 8, dtype=np.uint32))
        lsm.levels[0].run = SortedRun(
            lsm.levels[0].keys[::-1].copy(), lsm.levels[0].values
        )
        with pytest.raises(InvariantViolation):
            check_lsm_invariants(lsm)

    def test_empty_lsm_passes(self, device):
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=device)
        check_lsm_invariants(lsm)

    def test_validate_invariants_flag_runs_checker(self, device, rng):
        # With validation enabled a corrupted structure is detected on the
        # next update rather than silently propagating.
        lsm = GPULSM(config=LSMConfig(batch_size=8, validate_invariants=True),
                     device=device)
        lsm.insert(rng.integers(0, 1000, 8, dtype=np.uint32),
                   rng.integers(0, 100, 8, dtype=np.uint32))
        lsm.levels[0].run = SortedRun(
            lsm.levels[0].keys[::-1].copy(), lsm.levels[0].values
        )
        with pytest.raises(InvariantViolation):
            lsm.insert(rng.integers(0, 1000, 8, dtype=np.uint32),
                       rng.integers(0, 100, 8, dtype=np.uint32))
