"""Unit tests for segmented sort, compaction and multisplit primitives."""

import numpy as np
import pytest

from repro.primitives.compact import (
    compact,
    partition_two_way,
    segmented_compact,
    select_if,
)
from repro.primitives.histogram import block_histograms, digit_histogram
from repro.primitives.multisplit import multisplit_keys, multisplit_pairs
from repro.primitives.segmented_sort import segmented_sort_keys, segmented_sort_pairs


class TestSegmentedSort:
    def test_each_segment_sorted_independently(self, device):
        keys = np.array([5, 1, 9, 8, 2, 7, 3], dtype=np.uint32)
        offsets = np.array([0, 3, 5])
        out = segmented_sort_keys(keys, offsets, device=device)
        assert list(out) == [1, 5, 9, 2, 8, 3, 7]

    def test_stability_within_segment(self, device):
        # Words 4 and 5 share the original key 2 (after >>1); stable sort
        # must keep 4 (earlier) before 5.
        keys = np.array([5, 4, 2], dtype=np.uint32)
        out = segmented_sort_keys(keys, np.array([0]), key=lambda k: k >> 1,
                                  device=device)
        assert list(out) == [2, 5, 4]

    def test_pairs_follow_keys(self, device, rng):
        keys = rng.integers(0, 100, 64, dtype=np.uint32)
        values = np.arange(64, dtype=np.uint32)
        offsets = np.array([0, 20, 40])
        out_k, out_v = segmented_sort_pairs(keys, values, offsets, device=device)
        for s, e in ((0, 20), (20, 40), (40, 64)):
            order = np.argsort(keys[s:e], kind="stable")
            assert np.array_equal(out_k[s:e], keys[s:e][order])
            assert np.array_equal(out_v[s:e], values[s:e][order])

    def test_empty_input(self, device):
        out = segmented_sort_keys(np.zeros(0, dtype=np.uint32), np.zeros(0),
                                  device=device)
        assert out.size == 0

    def test_empty_segments_allowed(self, device):
        keys = np.array([3, 1], dtype=np.uint32)
        offsets = np.array([0, 0, 2, 2])
        out = segmented_sort_keys(keys, offsets, device=device)
        assert list(out) == [1, 3]

    def test_rejects_bad_offsets(self, device):
        with pytest.raises(ValueError):
            segmented_sort_keys(np.array([1], dtype=np.uint32), np.array([1]),
                                device=device)


class TestCompact:
    def test_keeps_flagged_elements_in_order(self, device):
        vals = np.arange(10, dtype=np.uint32)
        flags = vals % 3 == 0
        out = compact(vals, flags, device=device)
        assert list(out) == [0, 3, 6, 9]

    def test_all_false(self, device):
        out = compact(np.arange(5, dtype=np.uint32), np.zeros(5, dtype=bool),
                      device=device)
        assert out.size == 0

    def test_all_true(self, device):
        vals = np.arange(5, dtype=np.uint32)
        assert np.array_equal(compact(vals, np.ones(5, dtype=bool), device=device), vals)

    def test_shape_mismatch_rejected(self, device):
        with pytest.raises(ValueError):
            compact(np.arange(4), np.ones(3, dtype=bool), device=device)

    def test_select_if(self, device):
        vals = np.arange(20, dtype=np.uint32)
        out = select_if(vals, lambda v: v > 15, device=device)
        assert list(out) == [16, 17, 18, 19]

    def test_partition_two_way(self, device):
        vals = np.arange(10, dtype=np.uint32)
        flags = vals % 2 == 0
        sel, rej = partition_two_way(vals, flags, device=device)
        assert list(sel) == [0, 2, 4, 6, 8]
        assert list(rej) == [1, 3, 5, 7, 9]

    def test_segmented_compact_offsets(self, device):
        vals = np.array([1, 2, 3, 4, 5, 6], dtype=np.uint32)
        flags = np.array([True, False, True, True, False, False])
        seg_offsets = np.array([0, 3])
        out, new_offsets = segmented_compact(vals, flags, seg_offsets, device=device)
        assert list(out) == [1, 3, 4]
        assert list(new_offsets) == [0, 2, 3]

    def test_segmented_compact_empty_result_segment(self, device):
        vals = np.array([1, 2, 3, 4], dtype=np.uint32)
        flags = np.array([False, False, True, True])
        seg_offsets = np.array([0, 2])
        out, new_offsets = segmented_compact(vals, flags, seg_offsets, device=device)
        assert list(out) == [3, 4]
        assert list(new_offsets) == [0, 0, 2]


class TestMultisplit:
    def test_two_bucket_partition_is_stable(self, device):
        keys = np.array([10, 3, 8, 5, 2, 7], dtype=np.uint32)
        reordered, offsets = multisplit_keys(
            keys, lambda k: (k % 2 == 0).astype(np.int64), num_buckets=2,
            device=device,
        )
        # bucket 0 = odd keys (functor returns 0 for odd), bucket 1 = even
        assert list(reordered[offsets[0]:offsets[1]]) == [3, 5, 7]
        assert list(reordered[offsets[1]:offsets[2]]) == [10, 8, 2]

    def test_offsets_cover_input(self, device, rng):
        keys = rng.integers(0, 1000, 500, dtype=np.uint32)
        _, offsets = multisplit_keys(
            keys, lambda k: (k % 4).astype(np.int64), num_buckets=4, device=device
        )
        assert offsets[0] == 0
        assert offsets[-1] == keys.size
        assert np.all(np.diff(offsets) >= 0)

    def test_pairs_follow_keys(self, device, rng):
        keys = rng.integers(0, 100, 200, dtype=np.uint32)
        values = np.arange(200, dtype=np.uint32)
        rk, rv, offsets = multisplit_pairs(
            keys, values, lambda k: (k % 3).astype(np.int64), num_buckets=3,
            device=device,
        )
        assert np.array_equal(keys[rv], rk)  # values are the original indices

    def test_rejects_out_of_range_bucket(self, device):
        with pytest.raises(ValueError):
            multisplit_keys(np.array([1], dtype=np.uint32),
                            lambda k: np.array([5]), num_buckets=2, device=device)

    def test_rejects_too_many_buckets(self, device):
        with pytest.raises(ValueError):
            multisplit_keys(np.array([1], dtype=np.uint32),
                            lambda k: np.array([0]), num_buckets=64, device=device)

    def test_single_bucket_is_identity(self, device, rng):
        keys = rng.integers(0, 50, 64, dtype=np.uint32)
        reordered, offsets = multisplit_keys(
            keys, lambda k: np.zeros(k.size, dtype=np.int64), num_buckets=1,
            device=device,
        )
        assert np.array_equal(reordered, keys)
        assert list(offsets) == [0, 64]


class TestHistogram:
    def test_digit_histogram_counts(self, device):
        keys = np.array([0x00, 0x01, 0x01, 0xFF, 0x100], dtype=np.uint32)
        hist = digit_histogram(keys, 8, 0, device=device)
        assert hist[0x00] == 2  # 0x00 and 0x100 share the low byte 0
        assert hist[0x01] == 2
        assert hist[0xFF] == 1
        assert hist.sum() == keys.size

    def test_digit_histogram_shifted(self, device):
        keys = np.array([0x100, 0x200, 0x2FF], dtype=np.uint32)
        hist = digit_histogram(keys, 8, 8, device=device)
        assert hist[1] == 1 and hist[2] == 2

    def test_rejects_signed(self, device):
        with pytest.raises(TypeError):
            digit_histogram(np.arange(4, dtype=np.int32), 8, 0, device=device)

    def test_block_histograms_sum_to_global(self, device, rng):
        keys = rng.integers(0, 2**16, 10000, dtype=np.uint32)
        per_block = block_histograms(keys, 8, 0, device=device)
        total = digit_histogram(keys, 8, 0, device=device)
        assert np.array_equal(per_block.sum(axis=0), total)
