"""Unit tests for the LSD radix sort (repro.primitives.radix_sort)."""

import numpy as np
import pytest

from repro.primitives.radix_sort import RadixSortConfig, radix_sort_keys, radix_sort_pairs


class TestRadixSortKeys:
    def test_sorts_random_uint32(self, device, rng):
        keys = rng.integers(0, 2**32, 4096, dtype=np.uint32)
        out = radix_sort_keys(keys, device=device)
        assert np.array_equal(out, np.sort(keys))

    def test_sorts_uint64(self, device, rng):
        keys = rng.integers(0, 2**63, 1024, dtype=np.uint64)
        out = radix_sort_keys(keys, device=device)
        assert np.array_equal(out, np.sort(keys))

    def test_input_not_modified(self, device, rng):
        keys = rng.integers(0, 1000, 128, dtype=np.uint32)
        original = keys.copy()
        radix_sort_keys(keys, device=device)
        assert np.array_equal(keys, original)

    def test_empty_input(self, device):
        out = radix_sort_keys(np.zeros(0, dtype=np.uint32), device=device)
        assert out.size == 0

    def test_single_element(self, device):
        out = radix_sort_keys(np.array([42], dtype=np.uint32), device=device)
        assert list(out) == [42]

    def test_all_equal(self, device):
        keys = np.full(100, 7, dtype=np.uint32)
        assert np.array_equal(radix_sort_keys(keys, device=device), keys)

    def test_already_sorted(self, device):
        keys = np.arange(256, dtype=np.uint32)
        assert np.array_equal(radix_sort_keys(keys, device=device), keys)

    def test_reverse_sorted(self, device):
        keys = np.arange(256, dtype=np.uint32)[::-1].copy()
        assert np.array_equal(radix_sort_keys(keys, device=device), np.arange(256))

    def test_extreme_values(self, device):
        keys = np.array([0, 2**32 - 1, 1, 2**31], dtype=np.uint32)
        assert list(radix_sort_keys(keys, device=device)) == [0, 1, 2**31, 2**32 - 1]

    def test_rejects_signed_keys(self, device):
        with pytest.raises(TypeError):
            radix_sort_keys(np.arange(10, dtype=np.int32), device=device)

    def test_rejects_2d_input(self, device):
        with pytest.raises(ValueError):
            radix_sort_keys(np.zeros((4, 4), dtype=np.uint32), device=device)

    def test_records_traffic(self, device, rng):
        keys = rng.integers(0, 2**32, 1 << 12, dtype=np.uint32)
        before = device.snapshot()
        radix_sort_keys(keys, device=device)
        delta = device.counter.since(before)
        # Four 8-bit passes over 32-bit keys, each reading & writing the keys.
        assert delta.total_bytes >= 4 * 2 * keys.nbytes
        assert delta.launches >= 4


class TestRadixSortPairs:
    def test_values_follow_keys(self, device, rng):
        keys = rng.integers(0, 2**32, 2048, dtype=np.uint32)
        values = np.arange(2048, dtype=np.uint32)
        out_k, out_v = radix_sort_pairs(keys, values, device=device)
        order = np.argsort(keys, kind="stable")
        assert np.array_equal(out_k, keys[order])
        assert np.array_equal(out_v, values[order])

    def test_stability_of_equal_keys(self, device):
        keys = np.array([5, 3, 5, 3, 5], dtype=np.uint32)
        values = np.arange(5, dtype=np.uint32)
        _, out_v = radix_sort_pairs(keys, values, device=device)
        # Equal keys keep their original relative order: 3s then 5s.
        assert list(out_v) == [1, 3, 0, 2, 4]

    def test_value_dtype_preserved(self, device, rng):
        keys = rng.integers(0, 100, 64, dtype=np.uint32)
        values = rng.random(64)
        _, out_v = radix_sort_pairs(keys, values, device=device)
        assert out_v.dtype == np.float64

    def test_length_mismatch_rejected(self, device):
        with pytest.raises(ValueError):
            radix_sort_pairs(
                np.zeros(4, dtype=np.uint32), np.zeros(5, dtype=np.uint32),
                device=device,
            )

    def test_empty_pairs(self, device):
        k, v = radix_sort_pairs(
            np.zeros(0, dtype=np.uint32), np.zeros(0, dtype=np.uint32), device=device
        )
        assert k.size == 0 and v.size == 0


class TestRadixSortConfig:
    def test_bit_range_sort_ignores_high_bits(self, device):
        # Sorting only bits [0, 8) must order by the low byte alone and be
        # stable with respect to the rest of the key.
        keys = np.array([0x0102, 0x0201, 0x0301, 0x0102], dtype=np.uint32)
        cfg = RadixSortConfig(digit_bits=8, begin_bit=0, end_bit=8)
        out = radix_sort_keys(keys, config=cfg, device=device)
        assert [k & 0xFF for k in out] == sorted(k & 0xFF for k in keys)
        # stability among equal low bytes: 0x0201 before 0x0301
        low01 = [hex(k) for k in out if (k & 0xFF) == 0x01]
        assert low01 == ["0x201", "0x301"]

    def test_begin_bit_skips_status_bit(self, device):
        # Sorting from bit 1 upward ignores the LSB — the LSM's merge-order
        # comparator — so words differing only in the LSB are "equal".
        keys = np.array([0b1011, 0b1010, 0b0101, 0b0100], dtype=np.uint32)
        cfg = RadixSortConfig(begin_bit=1)
        out = radix_sort_keys(keys, config=cfg, device=device)
        assert [k >> 1 for k in out] == sorted(k >> 1 for k in keys)

    def test_invalid_digit_bits(self):
        with pytest.raises(ValueError):
            RadixSortConfig(digit_bits=0)
        with pytest.raises(ValueError):
            RadixSortConfig(digit_bits=17)

    def test_invalid_bit_range(self):
        with pytest.raises(ValueError):
            RadixSortConfig(begin_bit=8, end_bit=8)
        with pytest.raises(ValueError):
            RadixSortConfig(begin_bit=-1)

    def test_digit_width_variants_agree(self, device, rng):
        keys = rng.integers(0, 2**32, 1024, dtype=np.uint32)
        for bits in (4, 8, 11, 16):
            out = radix_sort_keys(keys, config=RadixSortConfig(digit_bits=bits),
                                  device=device)
            assert np.array_equal(out, np.sort(keys)), bits
