"""Unit tests for launch geometry and warp-wide primitives."""

import numpy as np
import pytest

from repro.gpu.errors import LaunchConfigurationError
from repro.gpu.launch import LaunchConfig, make_grid, warps_for
from repro.gpu import warp


class TestLaunchConfig:
    def test_tile_size(self):
        cfg = LaunchConfig(block_size=128, items_per_thread=8)
        assert cfg.tile_size == 1024

    def test_rejects_zero_block(self):
        with pytest.raises(LaunchConfigurationError):
            LaunchConfig(block_size=0)

    def test_rejects_zero_items_per_thread(self):
        with pytest.raises(LaunchConfigurationError):
            LaunchConfig(items_per_thread=0)


class TestMakeGrid:
    def test_exact_tile_multiple(self):
        grid = make_grid(2048, LaunchConfig(block_size=256, items_per_thread=4))
        assert grid.num_blocks == 2
        assert grid.num_threads == 512

    def test_rounds_up_partial_tile(self):
        grid = make_grid(1025, LaunchConfig(block_size=256, items_per_thread=4))
        assert grid.num_blocks == 2

    def test_zero_items_still_one_block(self):
        grid = make_grid(0)
        assert grid.num_blocks == 1

    def test_rejects_negative_items(self):
        with pytest.raises(LaunchConfigurationError):
            make_grid(-1)

    def test_rejects_oversized_block(self):
        with pytest.raises(LaunchConfigurationError):
            make_grid(10, LaunchConfig(block_size=2048))

    def test_saturation_flag(self):
        small = make_grid(128)
        huge = make_grid(1 << 22)
        assert not small.is_saturating
        assert huge.is_saturating

    def test_warp_count(self):
        grid = make_grid(1024, LaunchConfig(block_size=256, items_per_thread=1))
        assert grid.num_warps == 1024 // 32

    def test_warps_for(self):
        assert warps_for(0) == 1
        assert warps_for(1) == 1
        assert warps_for(33) == 2
        with pytest.raises(LaunchConfigurationError):
            warps_for(-1)


class TestWarpPrimitives:
    def test_pad_to_warps_shape(self):
        padded, n = warp.pad_to_warps(np.arange(40))
        assert padded.shape == (2, 32)
        assert n == 40

    def test_pad_to_warps_preserves_values(self):
        padded, n = warp.pad_to_warps(np.arange(5), fill_value=0)
        assert list(padded.reshape(-1)[:5]) == [0, 1, 2, 3, 4]
        assert np.all(padded.reshape(-1)[5:] == 0)

    def test_ballot_bits(self):
        pred = np.zeros((1, 32), dtype=bool)
        pred[0, 0] = True
        pred[0, 5] = True
        mask = warp.ballot(pred)
        assert mask[0] == (1 | (1 << 5))

    def test_ballot_all_set(self):
        pred = np.ones((1, 32), dtype=bool)
        assert warp.ballot(pred)[0] == np.uint64(0xFFFFFFFF)

    def test_ballot_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            warp.ballot(np.ones((1, 16), dtype=bool))

    def test_popc_matches_ballot(self, rng):
        pred = rng.random((4, 32)) < 0.5
        masks = warp.ballot(pred)
        counts = warp.popc(masks)
        assert np.array_equal(counts, pred.sum(axis=1))

    def test_lane_and_warp_id(self):
        lanes = warp.lane_id(70)
        warps = warp.warp_id(70)
        assert lanes[0] == 0 and lanes[33] == 1
        assert warps[0] == 0 and warps[64] == 2

    def test_shfl_up_shifts(self):
        vals = np.arange(32).reshape(1, 32)
        out = warp.shfl_up(vals, 1, fill_value=-1)
        assert out[0, 0] == -1
        assert out[0, 1] == 0
        assert out[0, 31] == 30

    def test_shfl_up_zero_delta_identity(self):
        vals = np.arange(32).reshape(1, 32)
        assert np.array_equal(warp.shfl_up(vals, 0), vals)

    def test_shfl_up_rejects_bad_delta(self):
        vals = np.zeros((1, 32))
        with pytest.raises(ValueError):
            warp.shfl_up(vals, 32)

    def test_warp_inclusive_scan_matches_cumsum(self, rng):
        vals = rng.integers(0, 10, (3, 32))
        scanned = warp.warp_inclusive_scan(vals)
        assert np.array_equal(scanned, np.cumsum(vals, axis=1))

    def test_warp_exclusive_scan_matches_cumsum(self, rng):
        vals = rng.integers(0, 10, (2, 32))
        scanned = warp.warp_exclusive_scan(vals)
        expected = np.cumsum(vals, axis=1) - vals
        assert np.array_equal(scanned, expected)

    def test_warp_reduce_matches_sum(self, rng):
        vals = rng.integers(0, 100, (5, 32))
        assert np.array_equal(warp.warp_reduce(vals), vals.sum(axis=1))
