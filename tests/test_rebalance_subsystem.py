"""Unit tests for load-aware shard rebalancing: the split/merge
primitives on :class:`~repro.scale.sharded.ShardedLSM`, the
:class:`~repro.scale.rebalance.LoadImbalancePolicy`, the split planner,
the executor, and the engine/KVStore stats surfacing."""

import numpy as np
import pytest

from repro import KVStore
from repro.api.ops import OpBatch
from repro.core.lsm import GPULSM
from repro.core.maintenance import MaintenanceAction
from repro.scale import (
    LoadImbalancePolicy,
    ShardedLSM,
    choose_split_key,
    execute_rebalance,
)
from repro.scale.protocol import structural_epoch
from repro.serve.engine import Engine

DOMAIN = 1 << 12


def _sharded(num_shards=4, max_shards=None, policy=None, **kw):
    return ShardedLSM(
        num_shards,
        batch_size=64,
        key_domain=DOMAIN,
        max_shards=max_shards,
        rebalance_policy=policy,
        **kw,
    )


def _fill(sharded, keys):
    keys = np.asarray(keys, dtype=np.uint64)
    sharded.bulk_build(keys, keys * 3)


def _assert_bounds_invariants(sharded):
    bounds = sharded.shard_bounds
    assert bounds[0] == 0
    assert bounds[-1] == sharded.key_domain
    assert all(a <= b for a, b in zip(bounds, bounds[1:]))
    assert len(bounds) == sharded.num_shards + 1


def _assert_answers(sharded, reference: dict):
    queries = np.arange(0, DOMAIN, 7, dtype=np.uint64)
    res = sharded.lookup(queries)
    for k, f, v in zip(queries, res.found, res.values):
        assert f == (int(k) in reference)
        if f:
            assert int(v) == reference[int(k)]


class TestSplitShard:
    def test_split_moves_boundary_and_preserves_answers(self):
        s = _sharded(2)
        keys = np.arange(0, DOMAIN, 3, dtype=np.uint64)
        _fill(s, keys)
        reference = {int(k): int(k) * 3 for k in keys}
        stats = s.split_shard(0, 512)
        assert stats["kind"] == "split"
        assert s.num_shards == 3
        assert s.shard_bounds == (0, 512, DOMAIN // 2, DOMAIN)
        assert stats["rows_migrated"] == int((keys < DOMAIN // 2).sum())
        _assert_bounds_invariants(s)
        _assert_answers(s, reference)

    def test_split_drops_stale_copies(self):
        s = _sharded(2)
        keys = np.arange(64, dtype=np.uint64)
        _fill(s, keys)
        s.insert(keys, keys + 1)  # a second version of every key
        before = s.num_elements
        stats = s.split_shard(0, 32)
        assert stats["removed"] > 0
        assert s.num_elements < before
        _assert_answers(s, {int(k): int(k) + 1 for k in keys})

    def test_split_key_must_be_strictly_inside(self):
        s = _sharded(2)
        lo, hi = s.shard_range(0)
        with pytest.raises(ValueError, match="split key"):
            s.split_shard(0, lo)
        with pytest.raises(ValueError, match="split key"):
            s.split_shard(0, hi + 1)

    def test_split_at_max_warp_buckets_rejected(self):
        s = ShardedLSM(32, batch_size=64, key_domain=1 << 10)
        with pytest.raises(RuntimeError, match="bucket limit"):
            s.split_shard(0, 8)

    def test_lifetime_counters_continuous_across_split(self):
        s = _sharded(2)
        keys = np.arange(128, dtype=np.uint64)
        _fill(s, keys)
        s.delete(np.arange(16, dtype=np.uint64))
        ins, dels = s.total_insertions, s.total_deletions
        s.split_shard(0, 64)
        assert s.total_insertions == ins
        assert s.total_deletions == dels

    def test_empty_shard_splits_cleanly(self):
        s = _sharded(2)
        stats = s.split_shard(1, DOMAIN // 2 + 8)
        assert stats["rows_migrated"] == 0
        assert s.num_shards == 3
        _assert_bounds_invariants(s)


class TestMergeShards:
    def test_merge_combines_ranges_and_answers(self):
        s = _sharded(4)
        keys = np.arange(0, DOMAIN, 5, dtype=np.uint64)
        _fill(s, keys)
        s.merge_shards(1)
        assert s.num_shards == 3
        _assert_bounds_invariants(s)
        _assert_answers(s, {int(k): int(k) * 3 for k in keys})

    def test_merge_parks_device_and_split_reuses_it(self):
        s = _sharded(4)
        _fill(s, np.arange(0, DOMAIN, 5, dtype=np.uint64))
        s.merge_shards(0)
        assert len(s._spare_devices) == 1
        s.split_shard(0, 100)
        assert len(s._spare_devices) == 0

    def test_merge_keeps_slower_clock(self):
        s = _sharded(4)
        _fill(s, np.arange(0, DOMAIN, 5, dtype=np.uint64))
        clocks = [sh.device.simulated_seconds for sh in s.shards[:2]]
        max_before = max(clocks)
        s.merge_shards(0)
        # The merged shard keeps the device that had done more work, so
        # the parallel profile's max clock can never drop below history.
        assert s.shards[0].device.simulated_seconds >= max_before

    def test_merge_index_validation(self):
        s = _sharded(2)
        with pytest.raises(ValueError, match="adjacent"):
            s.merge_shards(1)

    def test_serial_profile_counts_parked_devices(self):
        s = _sharded(4)
        _fill(s, np.arange(0, DOMAIN, 5, dtype=np.uint64))
        serial_before = s.profile()["serial_seconds"]
        s.merge_shards(0)
        assert s.profile()["serial_seconds"] >= serial_before


class TestEpochContract:
    def test_epoch_strictly_increases_across_boundary_changes(self):
        s = _sharded(2)
        _fill(s, np.arange(0, DOMAIN, 9, dtype=np.uint64))
        seen = [s.epoch]
        s.split_shard(0, 512)
        seen.append(s.epoch)
        s.merge_shards(0)
        seen.append(s.epoch)
        assert seen == sorted(set(seen)), f"epoch not monotone: {seen}"
        assert s.boundary_version == 2

    def test_sum_aliasing_regression(self):
        """A rebalance rebuilds shards whose fresh counters can make the
        per-shard epoch *sum* (the old aggregate) collide with an earlier
        state; the monotone top-level epoch must not."""
        s = _sharded(2)
        _fill(s, np.arange(0, DOMAIN, 9, dtype=np.uint64))
        epoch_before = s.epoch
        sum_before = sum(s.shard_epochs)
        s.split_shard(0, 512)
        s.merge_shards(0)
        # Both replacement shards were rebuilt with one bulk_build each, so
        # the naive sum is back at (or below) its old value...
        assert sum(s.shard_epochs) <= sum_before
        # ...but the top-level epoch moved strictly forward.
        assert s.epoch > epoch_before

    def test_structural_epoch_token_carries_boundary_version(self):
        s = _sharded(2)
        _fill(s, np.arange(0, DOMAIN, 9, dtype=np.uint64))
        kind, payload = structural_epoch(s)
        assert kind == "shards"
        assert payload[0] == 0
        s.split_shard(0, 512)
        kind, payload = structural_epoch(s)
        assert payload[0] == 1

    def test_rollback_cannot_cross_boundary_change(self):
        s = _sharded(2)
        _fill(s, np.arange(0, DOMAIN, 9, dtype=np.uint64))
        capture = s.snapshot_state()
        s.split_shard(0, 512)
        with pytest.raises(RuntimeError, match="boundary"):
            s.rollback_to(capture)

    def test_rollback_within_same_boundaries_still_works(self):
        s = _sharded(2)
        keys = np.arange(0, DOMAIN, 9, dtype=np.uint64)
        _fill(s, keys)
        capture = s.snapshot_state()
        s.insert(np.array([1], dtype=np.uint64), np.array([99], dtype=np.uint64))
        s.rollback_to(capture)
        _assert_answers(s, {int(k): int(k) * 3 for k in keys})


class TestRestoreBoundaries:
    def test_restore_into_empty_store(self):
        s = _sharded(2)
        s.restore_boundaries([0, 100, 700, DOMAIN])
        assert s.num_shards == 3
        assert s.shard_bounds == (0, 100, 700, DOMAIN)
        assert s.boundary_version == 1
        _assert_bounds_invariants(s)

    def test_identical_bounds_is_a_no_op(self):
        s = _sharded(2)
        epoch = s.epoch
        s.restore_boundaries(list(s.shard_bounds))
        assert s.boundary_version == 0
        assert s.epoch == epoch

    def test_non_empty_store_rejected(self):
        s = _sharded(2)
        _fill(s, np.arange(16, dtype=np.uint64))
        with pytest.raises(RuntimeError, match="empty"):
            s.restore_boundaries([0, 100, DOMAIN])

    def test_bad_bounds_rejected(self):
        s = _sharded(2)
        with pytest.raises(ValueError, match="cover"):
            s.restore_boundaries([0, 100, DOMAIN + 1])
        with pytest.raises(ValueError, match="non-decreasing"):
            s.restore_boundaries([0, 700, 100, DOMAIN])
        with pytest.raises(ValueError, match="at least two"):
            s.restore_boundaries([0])


class TestTrafficAccounting:
    def test_routed_traffic_is_counted_per_shard(self):
        s = _sharded(2)
        _fill(s, np.arange(0, DOMAIN, 7, dtype=np.uint64))
        low = np.arange(32, dtype=np.uint64)  # all in shard 0
        s.lookup(low)
        traffic = s.traffic_stats()
        assert traffic["per_shard_ops"][0] >= 32
        assert traffic["per_shard_ewma"][0] > traffic["per_shard_ewma"][1]

    def test_bulk_build_does_not_count_as_traffic(self):
        s = _sharded(2)
        _fill(s, np.arange(0, DOMAIN, 7, dtype=np.uint64))
        assert s.traffic_stats()["per_shard_ops"] == [0, 0]

    def test_traffic_accounting_adds_no_simulated_cost(self):
        a = _sharded(2, seed=3)
        b = _sharded(2, seed=3)
        keys = np.arange(0, 64, dtype=np.uint64)
        a.insert(keys, keys)
        b.insert(keys, keys)
        a.lookup(keys)
        # Traffic counters moved on a, but the clocks agree exactly with
        # the backend that did the same routed work.
        b.lookup(keys)
        assert a.profile() == b.profile()

    def test_shard_stats_carries_traffic_columns(self):
        s = _sharded(2)
        _fill(s, np.arange(0, DOMAIN, 7, dtype=np.uint64))
        s.lookup(np.arange(8, dtype=np.uint64))
        row = s.shard_stats()[0]
        assert row["traffic_ops"] >= 8
        assert row["traffic_ewma"] > 0.0


class TestLoadImbalancePolicy:
    def _hot(self, s, n=512):
        """Route n point lookups into shard 0's range."""
        s.lookup(np.zeros(n, dtype=np.uint64) + 1)

    def test_validation(self):
        with pytest.raises(ValueError, match="imbalance_threshold"):
            LoadImbalancePolicy(imbalance_threshold=1.0)
        with pytest.raises(ValueError, match="min_traffic"):
            LoadImbalancePolicy(min_traffic=-1)
        with pytest.raises(ValueError, match="cooldown"):
            LoadImbalancePolicy(cooldown_ticks=-1)

    def test_trips_on_skew_and_respects_floor(self):
        policy = LoadImbalancePolicy(2.0, min_traffic=256, cooldown_ticks=0)
        s = _sharded(2, max_shards=4)
        _fill(s, np.arange(0, DOMAIN, 7, dtype=np.uint64))
        assert policy.decide(s) is None  # no traffic yet
        self._hot(s, 100)
        assert policy.decide(s) is None  # below the min-traffic floor
        self._hot(s, 500)
        action = policy.decide(s)
        assert isinstance(action, MaintenanceAction)
        assert action.kind == "rebalance"
        assert action.policy == "load_imbalance"

    def test_cooldown_silences_following_polls(self):
        policy = LoadImbalancePolicy(2.0, min_traffic=1, cooldown_ticks=2)
        s = _sharded(2, max_shards=4)
        _fill(s, np.arange(0, DOMAIN, 7, dtype=np.uint64))
        self._hot(s)
        assert policy.decide(s) is not None
        assert policy.decide(s) is None
        assert policy.decide(s) is None
        assert policy.decide(s) is not None

    def test_balanced_traffic_does_not_trip(self):
        policy = LoadImbalancePolicy(2.0, min_traffic=1, cooldown_ticks=0)
        s = _sharded(2, max_shards=4)
        _fill(s, np.arange(0, DOMAIN, 7, dtype=np.uint64))
        s.lookup(np.arange(0, DOMAIN, 8, dtype=np.uint64))  # uniform
        assert policy.decide(s) is None


class TestPlannerAndExecutor:
    def test_choose_split_key_lands_inside_the_hot_range(self):
        s = _sharded(2)
        _fill(s, np.arange(0, DOMAIN, 3, dtype=np.uint64))
        s.lookup(np.arange(256, dtype=np.uint64))  # heat shard 0's low end
        lo, hi = s.shard_range(0)
        key = choose_split_key(s, 0)
        assert lo < key <= hi
        # The traffic histogram concentrates at the low end, so the
        # weighted median must land well below the range midpoint.
        assert key < (lo + hi) // 2

    def test_choose_split_key_empty_shard_uses_histogram_then_midpoint(self):
        s = _sharded(2)
        lo, hi = s.shard_range(1)
        key = choose_split_key(s, 1)  # empty, no traffic: midpoint
        assert key == lo + (hi + 1 - lo) // 2

    def test_executor_splits_below_max_shards(self):
        s = _sharded(2, max_shards=4)
        _fill(s, np.arange(0, DOMAIN, 3, dtype=np.uint64))
        s.lookup(np.arange(512, dtype=np.uint64))
        stats = execute_rebalance(s, trigger="test")
        assert stats is not None
        assert stats["split"] is not None and stats["merged"] is None
        assert s.num_shards == 3
        assert s.rebalance_stats()["rebalance_runs"] == 1

    def test_executor_merges_to_make_room_at_max_shards(self):
        s = _sharded(4, max_shards=4)
        _fill(s, np.arange(0, DOMAIN, 3, dtype=np.uint64))
        s.lookup(np.arange(512, dtype=np.uint64))  # shard 0 hot
        stats = execute_rebalance(s, trigger="test")
        assert stats is not None
        assert stats["merged"] is not None and stats["split"] is not None
        assert s.num_shards == 4  # merge + split nets out
        _assert_bounds_invariants(s)

    def test_executor_is_a_fixed_point_when_balanced(self):
        s = _sharded(4, max_shards=4)
        _fill(s, np.arange(0, DOMAIN, 3, dtype=np.uint64))
        s.lookup(np.arange(0, DOMAIN, 4, dtype=np.uint64))  # uniform
        assert execute_rebalance(s) is None
        assert s.rebalance_stats()["rebalance_runs"] == 0

    def test_run_due_maintenance_drives_the_policy(self):
        policy = LoadImbalancePolicy(2.0, min_traffic=1, cooldown_ticks=0)
        s = _sharded(2, max_shards=4, policy=policy)
        _fill(s, np.arange(0, DOMAIN, 3, dtype=np.uint64))
        s.lookup(np.arange(512, dtype=np.uint64))
        stats = s.run_due_maintenance()
        assert stats is not None and "rebalance" in stats
        assert s.num_shards == 3

    def test_no_policy_means_no_rebalancing(self):
        s = _sharded(2)
        _fill(s, np.arange(0, DOMAIN, 3, dtype=np.uint64))
        s.lookup(np.arange(512, dtype=np.uint64))
        assert s.run_due_maintenance() is None
        assert s.boundary_version == 0


class TestStatsSurfacing:
    def _engine_with_skew(self):
        policy = LoadImbalancePolicy(2.0, min_traffic=32, cooldown_ticks=0)
        backend = ShardedLSM(
            2,
            batch_size=64,
            key_domain=DOMAIN,
            max_shards=4,
            rebalance_policy=policy,
        )
        engine = Engine(backend)
        keys = np.arange(48, dtype=np.uint64)  # all in shard 0
        engine.apply(OpBatch.inserts(keys, keys * 2))
        engine.apply(OpBatch.lookups(np.repeat(keys, 2)))
        return engine, backend

    def test_engine_stats_breaks_out_rebalance_counters(self):
        engine, backend = self._engine_with_skew()
        stats = engine.stats()
        assert stats.backend_rebalance is not None
        assert stats.backend_rebalance["rebalance_runs"] >= 1
        assert stats.backend_rebalance["rows_migrated"] >= 1
        assert (
            stats.backend_rebalance["boundary_version"]
            == backend.boundary_version
        )
        assert len(stats.backend_rebalance["shard_traffic_ops"]) == (
            backend.num_shards
        )

    def test_gpulsm_backend_reports_none(self):
        engine = Engine(GPULSM(batch_size=16))
        engine.apply(OpBatch.lookups(np.array([1], dtype=np.uint64)))
        assert engine.stats().backend_rebalance is None

    def test_kvstore_forwards_rebalance_stats(self):
        policy = LoadImbalancePolicy(2.0, min_traffic=32, cooldown_ticks=0)
        backend = ShardedLSM(
            2,
            batch_size=64,
            key_domain=DOMAIN,
            max_shards=4,
            rebalance_policy=policy,
        )
        store = KVStore(backend=backend)
        keys = np.arange(48, dtype=np.uint64)
        store.apply(OpBatch.inserts(keys, keys * 2))
        store.apply(OpBatch.lookups(np.repeat(keys, 2)))
        assert store.rebalance_stats() is not None
        assert store.stats().backend_rebalance["rebalance_runs"] >= 1
        assert store.rebalance_stats() == store.stats().backend_rebalance

    def test_maintenance_action_accepts_rebalance_kind(self):
        action = MaintenanceAction(kind="rebalance", policy="x")
        assert action.kind == "rebalance"
        with pytest.raises(ValueError, match="kind"):
            MaintenanceAction(kind="reshard")
