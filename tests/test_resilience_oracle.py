"""Hypothesis chaos oracle: fault-domain isolation under random traces.

Random multi-client traces (rounds of 1–3 submissions, each 1–4 ops,
some deliberately poisoned with an out-of-domain insert) drive a fully
protected threaded engine — transactional ticks + quarantine +
supervised loops, durability on — with a one-shot
:class:`~repro.durability.faults.FaultInjector` armed at a random crash
point spanning every fault domain: the WAL (``wal.*``), the snapshotter
(``snapshot.*``) and the serving engine itself (``engine.*``).

The isolation contract checked on every trace, on both the single
:class:`GPULSM` and the four-shard :class:`ShardedLSM`:

* **no wedge** — every admitted ticket resolves (a result or a typed
  error) and every flush returns, whatever fired;
* **blast radius** — a poisoned submission fails with
  :class:`PoisonOperationError`; an innocent one either gets its answer
  or a typed :class:`EngineInternalError` (when the crash hit its own
  tick's commit or resolution path) — never a raw injected exception;
* **bit-exact innocents** — every answered lookup matches a plain-dict
  oracle folding only the committed innocent submissions with the
  engine's consistency semantics (snapshot: pre-tick state; strict:
  arrival order among innocents);
* **atomic rounds** — a round's innocents commit together or not at
  all, and the commit status is observable: answered tickets mean
  committed; all-failed-typed means committed exactly when the crash
  fired in the window after the WAL append (``engine.pre_resolve``),
  not committed otherwise — there is no state in which the clients saw
  errors, the answers were lost, *and* the backend kept the data;
* **durability agreement** — after close, a fresh backend recovered
  from the WAL matches the same oracle, and so does the live backend:
  with rollback + quarantine the backend, the WAL and the clients'
  answers never diverge, no matter where the fault hit;
* **no leaked threads** — the engine returns the process to its thread
  baseline after every trace.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api.ops import OpBatch, OpCode
from repro.core.lsm import GPULSM
from repro.durability.faults import FAULT_POINTS, FaultInjector
from repro.durability.manager import DurabilityConfig
from repro.durability.recovery import recover
from repro.durability.snapshot import EveryNTicks
from repro.gpu.device import Device
from repro.gpu.spec import K40C_SPEC
from repro.scale import ShardedLSM
from repro.serve.engine import Engine
from repro.serve.errors import EngineInternalError, PoisonOperationError
from repro.serve.resilience import ResilienceConfig
from repro.serve.scheduler import TickConfig

KEY_SPACE = 24
BATCH = 16
#: Out of every backend's key domain: the deterministic poison insert.
POISON_KEY = 2**40

key_strategy = st.integers(min_value=0, max_value=KEY_SPACE - 1)
op_strategy = st.one_of(
    st.tuples(st.just("insert"), key_strategy, st.integers(0, 99)),
    st.tuples(st.just("delete"), key_strategy, st.just(0)),
    st.tuples(st.just("lookup"), key_strategy, st.just(0)),
)
#: One submission: its ops plus whether a poison insert is appended.
entry_strategy = st.tuples(
    st.lists(op_strategy, min_size=1, max_size=4),
    st.booleans(),
)
round_strategy = st.lists(entry_strategy, min_size=1, max_size=3)
trace_strategy = st.lists(round_strategy, min_size=1, max_size=6)


def _make_backend(kind):
    if kind == "gpulsm":
        return GPULSM(batch_size=BATCH, device=Device(K40C_SPEC, seed=23))
    return ShardedLSM(
        num_shards=4, batch_size=BATCH, key_domain=KEY_SPACE, seed=23
    )


def _entry_batch(ops, poisoned):
    rows = {
        "insert": OpCode.INSERT,
        "delete": OpCode.DELETE,
        "lookup": OpCode.LOOKUP,
    }
    if poisoned:
        ops = list(ops) + [("insert", POISON_KEY, 1)]
    opcodes = np.array([rows[kind] for kind, _, _ in ops], dtype=np.uint8)
    keys = np.array([k for _, k, _ in ops], dtype=np.uint64)
    values = np.array([v for _, _, v in ops], dtype=np.uint64)
    return OpBatch(opcodes, keys, values, np.zeros(len(ops), dtype=np.uint64))


def _fold_updates(oracle, entries_ops, strict):
    """Fold the innocent submissions' updates with the planner's
    canonicalisation (snapshot: delete dominates, first insert wins;
    strict: arrival order across the whole tick)."""
    updates = [
        (kind, k, v)
        for ops in entries_ops
        for kind, k, v in ops
        if kind != "lookup"
    ]
    if strict:
        for kind, k, v in updates:
            if kind == "insert":
                oracle[k] = v
            else:
                oracle.pop(k, None)
        return
    deleted = {k for kind, k, _ in updates if kind == "delete"}
    for k in deleted:
        oracle.pop(k, None)
    seen = set()
    for kind, k, v in updates:
        if kind == "insert" and k not in seen:
            seen.add(k)
            if k not in deleted:
                oracle[k] = v


def _predict_lookups(pre_state, entries_ops, strict):
    """Expected (found, value) per lookup, per innocent entry, given the
    pre-tick oracle state.  Snapshot lookups see the pre-tick state;
    strict lookups see every prior op of the (innocents-only) tick."""
    predictions = []
    running = dict(pre_state)
    for ops in entries_ops:
        mine = {}
        for idx, (kind, k, v) in enumerate(ops):
            if kind == "lookup":
                state = running if strict else pre_state
                mine[idx] = (k in state, state.get(k))
            elif strict:
                if kind == "insert":
                    running[k] = v
                else:
                    running.pop(k, None)
        predictions.append(mine)
    return predictions


def _assert_backend_matches(backend, oracle, context):
    probe = np.arange(KEY_SPACE, dtype=np.uint64)
    result = backend.lookup(probe)
    for k in range(KEY_SPACE):
        expected = oracle.get(k)
        if expected is None:
            assert not result.found[k], (
                f"{context}: key {k} present but never committed"
            )
        else:
            assert result.found[k], f"{context}: committed key {k} lost"
            assert int(result.values[k]) == expected, (
                f"{context}: key {k} holds {int(result.values[k])}, "
                f"oracle says {expected}"
            )


@pytest.mark.parametrize("kind", ["gpulsm", "sharded4"])
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    trace=trace_strategy,
    point=st.sampled_from(FAULT_POINTS),
    hit=st.integers(min_value=1, max_value=4),
    strict=st.booleans(),
    snapshot_every=st.sampled_from([0, 2]),
)
def test_chaos_trace_isolates_faults(
    tmp_path_factory, kind, trace, point, hit, strict, snapshot_every
):
    thread_baseline = threading.active_count()
    directory = str(tmp_path_factory.mktemp("resilience"))
    injector = FaultInjector({point: hit})
    backend = _make_backend(kind)
    engine = Engine(
        backend,
        consistency="strict" if strict else "snapshot",
        # A huge target and linger: only flush() cuts, one tick per round.
        config=TickConfig(target_tick_size=1 << 20, linger=100.0),
        durability=DurabilityConfig(
            directory=directory,
            fsync_every_n_ticks=1,
            snapshot_policy=(
                EveryNTicks(snapshot_every) if snapshot_every else None
            ),
            fault_injector=injector,
        ),
        resilience=ResilienceConfig(
            transactional_ticks=True,
            quarantine=True,
            supervised=True,
            fault_injector=injector,
        ),
    )
    engine.start()

    oracle = {}
    try:
        for round_no, round_entries in enumerate(trace):
            innocents_ops = [
                ops for ops, poisoned in round_entries if not poisoned
            ]
            predictions = _predict_lookups(oracle, innocents_ops, strict)

            tickets = [
                (engine.submit_batch(_entry_batch(ops, poisoned)), ops, poisoned)
                for ops, poisoned in round_entries
            ]
            engine.flush(timeout=30.0)  # no wedge: must always return

            # Gather every outcome first: no ticket may dangle, and no
            # ticket may carry a raw (untyped) injected exception.
            innocent_results = []
            for ticket, ops, poisoned in tickets:
                try:
                    result = ticket.result(timeout=30.0)
                except PoisonOperationError:
                    assert poisoned, (
                        f"round {round_no}: innocent submission failed as "
                        "poison"
                    )
                    continue
                except EngineInternalError:
                    assert not poisoned, (
                        f"round {round_no}: poison got an internal error, "
                        "not PoisonOperationError"
                    )
                    innocent_results.append(None)
                    continue
                assert not poisoned, (
                    f"round {round_no}: poisoned submission got an answer"
                )
                innocent_results.append(result)

            # Atomicity: a round's innocents commit together or not at
            # all.  Answered tickets prove the commit; all-failed-typed
            # means the crash cost the round its answers — and then the
            # round committed exactly when the crash fired after the WAL
            # append (engine.pre_resolve), not otherwise.
            answered = [r for r in innocent_results if r is not None]
            if answered:
                assert len(answered) == len(innocent_results), (
                    f"round {round_no}: innocents split between answers "
                    f"and errors (crashed={injector.crashed})"
                )
                committed = True
            else:
                committed = bool(innocent_results) and (
                    injector.crashed == "engine.pre_resolve"
                )

            innocent_no = 0
            for result in innocent_results:
                if result is None:
                    innocent_no += 1
                    continue
                expected = predictions[innocent_no]
                for idx, (want_found, want_value) in expected.items():
                    got_found = bool(result.found[idx])
                    assert got_found == want_found, (
                        f"round {round_no} entry {innocent_no} op {idx}: "
                        f"found={got_found}, oracle says {want_found} "
                        f"(crashed={injector.crashed})"
                    )
                    if want_found:
                        assert int(result.values[idx]) == want_value, (
                            f"round {round_no} entry {innocent_no} op "
                            f"{idx}: value {int(result.values[idx])}, "
                            f"oracle says {want_value}"
                        )
                innocent_no += 1

            if committed:
                _fold_updates(oracle, innocents_ops, strict)
    finally:
        engine.close()

    # The live backend agrees with the oracle fold.
    _assert_backend_matches(
        backend, oracle, f"{kind}/live/{injector.crashed or 'no-crash'}"
    )

    # A fresh backend recovered from the WAL agrees too: clients' answers,
    # the live structure and the durable log never diverged.
    recovered = _make_backend(kind)
    recover(directory, recovered)
    _assert_backend_matches(
        recovered, oracle, f"{kind}/recovered/{injector.crashed or 'no-crash'}"
    )

    # The engine returned the process to its thread baseline.
    deadline = time.monotonic() + 5.0
    while (
        threading.active_count() > thread_baseline
        and time.monotonic() < deadline
    ):
        time.sleep(0.01)
    assert threading.active_count() <= thread_baseline, (
        f"leaked threads: {[t.name for t in threading.enumerate()]}"
    )
