"""Unit tests for scans and reductions (repro.primitives.scan / reduce)."""

import numpy as np
import pytest

from repro.primitives.reduce import device_reduce, segmented_reduce
from repro.primitives.scan import (
    exclusive_scan,
    inclusive_scan,
    segmented_exclusive_scan,
)


class TestExclusiveScan:
    def test_matches_cumsum(self, device, rng):
        vals = rng.integers(0, 100, 1000)
        scanned, total = exclusive_scan(vals, device=device)
        expected = np.concatenate(([0], np.cumsum(vals)[:-1]))
        assert np.array_equal(scanned, expected)
        assert total == vals.sum()

    def test_empty_input(self, device):
        scanned, total = exclusive_scan(np.zeros(0, dtype=np.int64), device=device)
        assert scanned.size == 0
        assert total == 0

    def test_single_element(self, device):
        scanned, total = exclusive_scan(np.array([7]), device=device)
        assert list(scanned) == [0]
        assert total == 7

    def test_initial_offset(self, device):
        scanned, total = exclusive_scan(np.array([1, 2, 3]), device=device, initial=10)
        assert list(scanned) == [10, 11, 13]
        assert total == 16

    def test_rejects_2d(self, device):
        with pytest.raises(ValueError):
            exclusive_scan(np.zeros((2, 2)), device=device)

    def test_records_traffic(self, device):
        vals = np.ones(1 << 12, dtype=np.int64)
        before = device.snapshot()
        exclusive_scan(vals, device=device)
        assert device.counter.since(before).total_bytes >= vals.nbytes


class TestInclusiveScan:
    def test_matches_cumsum(self, device, rng):
        vals = rng.integers(0, 50, 512)
        assert np.array_equal(inclusive_scan(vals, device=device), np.cumsum(vals))

    def test_relation_to_exclusive(self, device, rng):
        vals = rng.integers(0, 50, 128)
        inc = inclusive_scan(vals, device=device)
        exc, _ = exclusive_scan(vals, device=device)
        assert np.array_equal(inc - vals, exc)


class TestSegmentedExclusiveScan:
    def test_restarts_at_segments(self, device):
        vals = np.array([1, 2, 3, 10, 20, 5])
        offsets = np.array([0, 3, 5])
        out = segmented_exclusive_scan(vals, offsets, device=device)
        assert list(out) == [0, 1, 3, 0, 10, 0]

    def test_single_segment_equals_exclusive(self, device, rng):
        vals = rng.integers(0, 10, 64)
        out = segmented_exclusive_scan(vals, np.array([0]), device=device)
        expected, _ = exclusive_scan(vals, device=device)
        assert np.array_equal(out, expected)

    def test_empty_values(self, device):
        out = segmented_exclusive_scan(np.zeros(0, dtype=np.int64), np.zeros(0),
                                       device=device)
        assert out.size == 0

    def test_rejects_unsorted_offsets(self, device):
        with pytest.raises(ValueError):
            segmented_exclusive_scan(np.arange(4), np.array([0, 3, 2]), device=device)

    def test_rejects_offsets_not_starting_at_zero(self, device):
        with pytest.raises(ValueError):
            segmented_exclusive_scan(np.arange(4), np.array([1, 2]), device=device)

    def test_empty_middle_segment(self, device):
        vals = np.array([4, 5, 6])
        offsets = np.array([0, 2, 2])  # second segment empty
        out = segmented_exclusive_scan(vals, offsets, device=device)
        assert list(out) == [0, 4, 0]


class TestDeviceReduce:
    def test_sum(self, device, rng):
        vals = rng.integers(0, 1000, 333)
        assert device_reduce(vals, "sum", device=device) == vals.sum()

    def test_max_min(self, device, rng):
        vals = rng.integers(0, 1000, 100)
        assert device_reduce(vals, "max", device=device) == vals.max()
        assert device_reduce(vals, "min", device=device) == vals.min()

    def test_empty_sum_is_zero(self, device):
        assert device_reduce(np.zeros(0), "sum", device=device) == 0

    def test_empty_max_raises(self, device):
        with pytest.raises(ValueError):
            device_reduce(np.zeros(0), "max", device=device)

    def test_unknown_op_raises(self, device):
        with pytest.raises(ValueError):
            device_reduce(np.arange(4), "prod", device=device)


class TestSegmentedReduce:
    def test_segment_sums(self, device):
        vals = np.array([1, 2, 3, 4, 5, 6])
        offsets = np.array([0, 2, 5])
        out = segmented_reduce(vals, offsets, "sum", device=device)
        assert list(out) == [3, 12, 6]

    def test_empty_segment_sums_to_zero(self, device):
        vals = np.array([1, 2, 3])
        offsets = np.array([0, 0, 3])
        out = segmented_reduce(vals, offsets, "sum", device=device)
        assert list(out) == [0, 6, 0]

    def test_segment_max(self, device):
        vals = np.array([5, 1, 9, 2])
        offsets = np.array([0, 2])
        out = segmented_reduce(vals, offsets, "max", device=device)
        assert list(out) == [5, 9]

    def test_empty_segment_max_raises(self, device):
        with pytest.raises(ValueError):
            segmented_reduce(np.array([1]), np.array([0, 1]), "max", device=device)

    def test_matches_manual_loop(self, device, rng):
        vals = rng.integers(0, 100, 200)
        offsets = np.sort(rng.choice(np.arange(1, 200), 9, replace=False))
        offsets = np.concatenate(([0], offsets))
        out = segmented_reduce(vals, offsets, "sum", device=device)
        ends = np.concatenate((offsets[1:], [200]))
        expected = [vals[s:e].sum() for s, e in zip(offsets, ends)]
        assert list(out) == expected
