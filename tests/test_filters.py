"""Unit and integration tests of the query acceleration layer.

Covers the building blocks of :mod:`repro.core.filters` (Bloom filter
guarantees, fence pairs, the FILTER traffic class of the cost model), the
GPU LSM integration (pruned lookup / fence-skipped count and range /
sorted-probe mode, all answer-invariant), the filter statistics and the
memory accounting, and the stack above: ShardedLSM propagation, the
mixed-op planner under both consistency knobs, and the serving engine's
filter telemetry.
"""

import numpy as np
import pytest

from repro.api.kvstore import KVStore
from repro.api.ops import OpBatch
from repro.api.planner import Consistency
from repro.core.config import LSMConfig
from repro.core.filters import (
    BloomFilter,
    FilterStatsCounter,
    LevelFilters,
    derive_num_hashes,
)
from repro.core.lsm import GPULSM
from repro.gpu.cost_model import CostModel
from repro.gpu.counters import KernelStats
from repro.gpu.device import Device
from repro.gpu.spec import K40C_SPEC
from repro.scale.sharded import ShardedLSM
from repro.serve.engine import Engine


# --------------------------------------------------------------------- #
# Bloom filter building block
# --------------------------------------------------------------------- #
class TestBloomFilter:
    def test_no_false_negatives(self, rng):
        keys = rng.choice(1 << 31, size=2000, replace=False)
        bloom = BloomFilter(num_bits=keys.size * 10, num_hashes=7)
        bloom.add(keys)
        assert bool(np.all(bloom.maybe_contains(keys)))

    def test_false_positive_rate_is_small(self, rng):
        keys = rng.choice(1 << 30, size=4000, replace=False)
        bloom = BloomFilter(num_bits=keys.size * 10, num_hashes=7)
        bloom.add(keys)
        # Probe keys guaranteed absent (disjoint range).
        misses = (1 << 30) + rng.choice(1 << 20, size=4000, replace=False)
        fp_rate = float(np.mean(bloom.maybe_contains(misses)))
        assert fp_rate < 0.05  # theory: ~0.8 % at 10 bits/key, k = 7

    def test_derived_hash_count(self):
        assert derive_num_hashes(10) == 7  # round(10 * ln 2)
        assert derive_num_hashes(1) == 1
        with pytest.raises(ValueError):
            derive_num_hashes(0)

    def test_probe_traffic_recorded_as_filter_class(self, device):
        keys = np.arange(100, dtype=np.uint64)
        bloom = BloomFilter(num_bits=1000, num_hashes=3)
        bloom.add(keys)
        before = device.counter.total_filter_bytes
        bloom.maybe_contains(keys, device=device)
        assert device.counter.total_filter_bytes > before

    def test_filter_bytes_cheaper_than_random(self):
        model = CostModel(K40C_SPEC)
        nbytes = 1 << 20
        filter_cost = model.cost_of(
            KernelStats("f", filter_read_bytes=nbytes)
        )
        random_cost = model.cost_of(KernelStats("r", random_read_bytes=nbytes))
        assert 0 < filter_cost.filter_seconds < random_cost.random_seconds
        assert filter_cost.seconds < random_cost.seconds


class TestLevelFilters:
    def test_fences_are_min_max_of_original_keys(self, device):
        keys = np.array([17, 3, 99, 42], dtype=np.uint32)
        filters = LevelFilters.build(
            keys, enable_fences=True, bloom_bits_per_key=0, device=device
        )
        assert filters.min_key == 3 and filters.max_key == 99
        assert filters.bloom is None
        mask = filters.fence_mask(np.array([2, 3, 50, 100]))
        assert mask.tolist() == [False, True, True, False]

    def test_fence_overlap_for_ranges(self):
        filters = LevelFilters(min_key=10, max_key=20)
        ov = filters.fence_overlap(np.array([0, 0, 21, 15]), np.array([5, 10, 30, 16]))
        assert ov.tolist() == [False, True, False, True]

    def test_nbytes_counts_bloom_bits(self, device):
        keys = np.arange(1000, dtype=np.uint32)
        with_bloom = LevelFilters.build(
            keys, enable_fences=True, bloom_bits_per_key=10, device=device
        )
        fences_only = LevelFilters.build(
            keys, enable_fences=True, bloom_bits_per_key=0, device=device
        )
        assert with_bloom.nbytes >= fences_only.nbytes + 10 * keys.size // 8

    def test_stats_counter_merge_and_rates(self):
        a = FilterStatsCounter(lookup_pairs=10, fence_pruned=2, bloom_pruned=3,
                               searched=5, bloom_false_positives=1)
        b = FilterStatsCounter(lookup_pairs=10, searched=10)
        a.merge(b)
        d = a.as_dict()
        assert d["lookup_pairs"] == 20 and d["searched"] == 15
        assert d["lookup_prune_rate"] == pytest.approx(0.25)
        assert d["bloom_false_positive_rate"] == pytest.approx(1 / 15)


# --------------------------------------------------------------------- #
# GPU LSM integration
# --------------------------------------------------------------------- #
def _make_pair(device_seed, b=32, **accel):
    """An unfiltered and an accelerated LSM fed identical updates."""
    plain = GPULSM(config=LSMConfig(batch_size=b), device=Device(K40C_SPEC, seed=device_seed))
    accel_lsm = GPULSM(
        config=LSMConfig(batch_size=b, **accel),
        device=Device(K40C_SPEC, seed=device_seed + 1),
    )
    return plain, accel_lsm


ACCEL_MODES = [
    dict(enable_fences=True),
    dict(bloom_bits_per_key=10),
    dict(enable_fences=True, bloom_bits_per_key=10),
    dict(enable_fences=True, bloom_bits_per_key=10, sort_queries=True),
]


class TestLSMFilterIntegration:
    @pytest.mark.parametrize("accel", ACCEL_MODES)
    def test_queries_answer_invariant_under_filters(self, rng, accel):
        plain, fast = _make_pair(7, **accel)
        b, key_space = 32, 400
        for step in range(6):
            ins = rng.integers(0, key_space, b - 8, dtype=np.uint32)
            vals = rng.integers(0, 1 << 20, b - 8, dtype=np.uint32)
            dels = rng.integers(0, key_space, 8, dtype=np.uint32)
            for lsm in (plain, fast):
                lsm.update(insert_keys=ins, insert_values=vals, delete_keys=dels)
            if step == 3:
                plain.cleanup()
                fast.cleanup()
            queries = rng.integers(0, key_space + 50, 300, dtype=np.uint32)
            r0, r1 = plain.lookup(queries), fast.lookup(queries)
            assert np.array_equal(r0.found, r1.found)
            assert np.array_equal(r0.values[r0.found], r1.values[r1.found])
            k1 = rng.integers(0, key_space, 40, dtype=np.uint32)
            k2 = np.minimum(k1 + rng.integers(0, 100, 40).astype(np.uint32),
                            key_space + 20).astype(np.uint32)
            assert np.array_equal(plain.count(k1, k2), fast.count(k1, k2))
            rr0, rr1 = plain.range_query(k1, k2), fast.range_query(k1, k2)
            assert np.array_equal(rr0.offsets, rr1.offsets)
            assert np.array_equal(rr0.keys, rr1.keys)
            assert np.array_equal(rr0.values, rr1.values)

    def test_bloom_prunes_misses(self, device):
        lsm = GPULSM(
            config=LSMConfig(batch_size=16, bloom_bits_per_key=10), device=device
        )
        lsm.insert(np.arange(0, 32, 2, dtype=np.uint32),
                   np.arange(16, dtype=np.uint32))  # even keys, one level
        res = lsm.lookup(np.arange(1, 32, 2, dtype=np.uint32))  # odd: misses
        assert not res.found.any()
        stats = lsm.filter_stats()
        assert stats["bloom_pruned"] > 0
        assert stats["bloom_prune_rate"] > 0.8
        assert stats["filter_memory_bytes"] > 0

    def test_fences_skip_disjoint_ranges(self, device):
        lsm = GPULSM(
            config=LSMConfig(batch_size=16, enable_fences=True),
            device=device,
            key_only=True,
        )
        # Bulk build distributes contiguous key slices across two levels,
        # so each level's fence covers a disjoint key range.
        lsm.bulk_build(np.arange(48, dtype=np.uint32))
        assert lsm.num_occupied_levels == 2
        counts = lsm.count(np.array([0, 40]), np.array([5, 47]))
        assert counts.tolist() == [6, 8]
        stats = lsm.filter_stats()
        assert stats["range_fence_pruned"] > 0
        # Fence-pruned lookups on keys outside every level's range.
        res = lsm.lookup(np.array([100, 200], dtype=np.uint32))
        assert not res.found.any()
        assert lsm.filter_stats()["fence_pruned"] >= 2

    def test_sorted_probe_restores_request_order(self, device):
        lsm = GPULSM(
            config=LSMConfig(batch_size=16, sort_queries=True), device=device
        )
        keys = np.arange(16, dtype=np.uint32)
        lsm.insert(keys, keys * 10)
        queries = np.array([9, 2, 200, 5, 2], dtype=np.uint32)  # unsorted, dupes
        res = lsm.lookup(queries)
        assert res.found.tolist() == [True, True, False, True, True]
        assert res.values[res.found].tolist() == [90, 20, 50, 20]

    def test_filter_memory_counted_and_rebuilt_on_cleanup(self, device):
        lsm = GPULSM(
            config=LSMConfig(
                batch_size=16, enable_fences=True, bloom_bits_per_key=10
            ),
            device=device,
        )
        plain = GPULSM(config=LSMConfig(batch_size=16), device=Device(K40C_SPEC))
        keys = np.arange(32, dtype=np.uint32)
        for s in (slice(0, 16), slice(16, 32)):
            lsm.insert(keys[s], keys[s])
            plain.insert(keys[s], keys[s])
        assert lsm.filter_memory_bytes > 0
        assert (
            lsm.memory_usage_bytes
            == plain.memory_usage_bytes + lsm.filter_memory_bytes
        )
        lsm.delete(keys[:16])
        lsm.cleanup()
        # Every occupied level carries fresh filters after the rebuild.
        for level in lsm.occupied_levels():
            assert level.filters is not None and level.filters.bloom is not None
        res = lsm.lookup(keys)
        assert res.found.tolist() == [False] * 16 + [True] * 16

    def test_cleanup_padding_excluded_from_fences(self, device):
        lsm = GPULSM(
            config=LSMConfig(
                batch_size=16, enable_fences=True, bloom_bits_per_key=10
            ),
            device=device,
            key_only=True,
        )
        lsm.insert(np.arange(16, dtype=np.uint32))
        lsm.delete(np.arange(8, dtype=np.uint32))  # 8 survivors + padding
        stats = lsm.cleanup()
        assert stats["padding"] > 0
        (level,) = lsm.occupied_levels()
        # The fence max is the largest *real* key, not the placebo max_key.
        assert level.filters.max_key == 15
        # Genuine answers unaffected: survivors found, deleted keys not.
        assert not lsm.lookup(np.arange(8, dtype=np.uint32)).found.any()
        assert lsm.lookup(np.arange(8, 16, dtype=np.uint32)).found.all()

    def test_genuine_max_key_tombstone_stays_covered(self, device):
        max_key = (1 << 31) - 1
        lsm = GPULSM(
            config=LSMConfig(batch_size=4, bloom_bits_per_key=10),
            device=device,
            key_only=True,
        )
        lsm.insert(np.array([max_key, 1, 2, 3], dtype=np.uint32))
        lsm.delete(np.array([max_key, max_key, max_key, max_key], dtype=np.uint32))
        # The tombstone level's Bloom must cover max_key (word-identical to
        # a placebo, but it shadows the older regular copy below it).
        assert not bool(lsm.lookup(np.array([max_key], dtype=np.uint32)).found[0])

    def test_filters_off_attach_nothing(self, device):
        lsm = GPULSM(config=LSMConfig(batch_size=16), device=device)
        lsm.insert(np.arange(16, dtype=np.uint32), np.arange(16, dtype=np.uint32))
        assert all(lvl.filters is None for lvl in lsm.occupied_levels())
        assert lsm.filter_memory_bytes == 0
        assert lsm.filter_stats()["lookup_prune_rate"] == 0.0


# --------------------------------------------------------------------- #
# The stack above: sharded, planner (both knobs), engine telemetry
# --------------------------------------------------------------------- #
class TestFilterPropagation:
    def test_sharded_propagates_config_and_aggregates_stats(self, rng):
        sharded = ShardedLSM(
            num_shards=4,
            batch_size=64,
            key_domain=1 << 10,
            enable_fences=True,
            bloom_bits_per_key=10,
        )
        assert sharded.shard_config.bloom_bits_per_key == 10
        tuned = ShardedLSM(
            num_shards=2, batch_size=64, sort_queries=True,
            sorted_probe_cached_probes=5,
        )
        assert tuned.shard_config.sorted_probe_cached_probes == 5
        assert tuned.shard_config.sort_queries
        keys = rng.choice(1 << 10, size=64, replace=False).astype(np.uint32)
        sharded.insert(keys, keys)
        plain = ShardedLSM(num_shards=4, batch_size=64, key_domain=1 << 10)
        plain.insert(keys, keys)
        queries = rng.integers(0, 1 << 10, 200, dtype=np.uint32)
        r0, r1 = plain.lookup(queries), sharded.lookup(queries)
        assert np.array_equal(r0.found, r1.found)
        stats = sharded.filter_stats()
        assert stats["lookup_pairs"] > 0
        assert stats["filter_memory_bytes"] == sharded.filter_memory_bytes > 0

    @pytest.mark.parametrize("consistency", [Consistency.SNAPSHOT, Consistency.STRICT])
    def test_planner_uses_accelerated_path_under_both_knobs(self, rng, consistency):
        accel = KVStore(
            backend=GPULSM(
                config=LSMConfig(
                    batch_size=64, enable_fences=True, bloom_bits_per_key=10
                ),
                device=Device(K40C_SPEC, seed=3),
            )
        )
        plain = KVStore(
            backend=GPULSM(
                config=LSMConfig(batch_size=64), device=Device(K40C_SPEC, seed=4)
            )
        )
        keys = rng.choice(500, size=48, replace=False).astype(np.uint64)
        seed_tick = OpBatch.inserts(keys, keys * 2)
        tick = OpBatch.concat(
            [
                OpBatch.lookups(np.concatenate([keys[:8], keys[:8] + 500])),
                OpBatch.deletes(keys[:4]),
                OpBatch.counts(np.array([0]), np.array([499])),
                OpBatch.inserts(keys[:2] + 501, keys[:2]),
            ]
        )
        accel.apply(seed_tick, consistency=consistency)
        plain.apply(seed_tick, consistency=consistency)
        r_accel = accel.apply(tick, consistency=consistency)
        r_plain = plain.apply(tick, consistency=consistency)
        assert np.array_equal(r_accel.found, r_plain.found)
        assert np.array_equal(r_accel.counts, r_plain.counts)
        # The accelerated backend consulted its filters during the tick.
        assert accel.engine.backend.filter_stats()["lookup_pairs"] > 0

    def test_engine_stats_report_filter_rates(self):
        backend = GPULSM(
            config=LSMConfig(batch_size=32, bloom_bits_per_key=10),
            device=Device(K40C_SPEC, seed=9),
        )
        engine = Engine(backend)
        keys = np.arange(0, 64, 2, dtype=np.uint64)
        engine.apply(OpBatch.inserts(keys, keys))
        engine.apply(OpBatch.lookups(keys + 1))  # all misses
        stats = engine.stats()
        assert stats.backend_filters is not None
        assert stats.backend_filters["bloom_prune_rate"] > 0.5
        assert stats.summary_rows()[0]["filter_prune_rate"] > 0.5

    def test_engine_stats_without_filter_backend(self):
        class Bare:
            pass

        engine = Engine(Bare())
        assert engine.stats().backend_filters is None
