"""The durability subsystem end to end: WAL, snapshots, recovery, lifecycle.

Format-level WAL tests live in ``test_wal_format.py`` and the randomized
kill-and-restart oracle in ``test_durability_oracle.py``; this file pins
the deterministic behaviour of each component and of the engine wiring:

* group-commit fsync batching (count and interval knobs, final commit on
  close);
* snapshot atomicity — a crash mid-write or pre-rename leaves the
  previous snapshot authoritative, committed snapshots are GC'd to
  ``keep_snapshots``, stale temps are swept on recovery;
* recovery from WAL only, from snapshot + tail, and across restarts with
  continuing tick ids;
* the engine/KVStore lifecycle: durability off writes nothing and stays
  bit-identical, ``close()`` drains admitted work into the WAL, context
  managers close, ``recover=False`` refuses a used directory.
"""

import json
import os

import numpy as np
import pytest

from repro.api.kvstore import KVStore
from repro.api.ops import OpBatch
from repro.core.lsm import GPULSM
from repro.durability.faults import FaultInjector, InjectedCrash
from repro.durability.manager import DurabilityConfig, DurabilityError
from repro.durability.recovery import WAL_FILENAME, recover
from repro.durability.snapshot import (
    EveryNTicks,
    NoSnapshots,
    WalBytesPolicy,
    clean_stale_temps,
    list_manifests,
    load_latest_manifest,
    write_snapshot,
)
from repro.durability.wal import WriteAheadLog, read_records
from repro.scale.sharded import ShardedLSM
from repro.serve.engine import Engine

BATCH = 64


def _empty_batch():
    return OpBatch(
        np.array([], dtype=np.uint8),
        np.array([], dtype=np.uint64),
        np.array([], dtype=np.uint64),
        np.array([], dtype=np.uint64),
    )


def _insert_batch(lo, n, value_bias=0):
    keys = np.arange(lo, lo + n, dtype=np.uint64)
    return OpBatch.inserts(keys, keys * 10 + value_bias)


def _fresh(kind, tick_size=BATCH):
    if kind == "sharded4":
        return ShardedLSM(num_shards=4, batch_size=tick_size, seed=1)
    return GPULSM(batch_size=tick_size)


def _lookup_values(backend, keys):
    result = backend.lookup(np.asarray(keys, dtype=np.uint64))
    return [
        (bool(f), int(v) if f else 0)
        for f, v in zip(result.found, result.values)
    ]


# --------------------------------------------------------------------- #
# WAL group commit
# --------------------------------------------------------------------- #
class TestGroupCommit:
    def test_fsync_every_n_ticks(self, tmp_path):
        wal = WriteAheadLog(
            os.path.join(tmp_path, "wal.log"), fsync_every_n_ticks=4
        )
        for tick in range(10):
            wal.append(tick, _empty_batch())
        assert wal.appends == 10
        assert wal.fsyncs == 2  # at ticks 4 and 8
        assert wal.pending_ticks == 2
        wal.close()
        assert wal.fsyncs == 3  # the final commit on close
        assert wal.pending_ticks == 0

    def test_fsync_interval(self, tmp_path):
        wal = WriteAheadLog(
            os.path.join(tmp_path, "wal.log"),
            fsync_every_n_ticks=None,
            fsync_interval_s=0.0,  # every append is past the interval
        )
        wal.append(0, _empty_batch())
        wal.append(1, _empty_batch())
        assert wal.fsyncs == 2
        wal.close()
        assert wal.fsyncs == 2  # nothing pending, no extra fsync

    def test_count_knob_disabled_defers_to_close(self, tmp_path):
        wal = WriteAheadLog(
            os.path.join(tmp_path, "wal.log"), fsync_every_n_ticks=None
        )
        for tick in range(5):
            wal.append(tick, _empty_batch())
        assert wal.fsyncs == 0 and wal.pending_ticks == 5
        wal.close()
        assert wal.fsyncs == 1

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(os.path.join(tmp_path, "wal.log"))
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(Exception, match="closed"):
            wal.append(0, _empty_batch())

    def test_truncate_to_cuts_torn_tail(self, tmp_path):
        path = os.path.join(tmp_path, "wal.log")
        wal = WriteAheadLog(path, fsync_every_n_ticks=1)
        wal.append(0, _insert_batch(0, 4))
        end = wal.end_offset
        wal.close()
        with open(path, "ab") as fh:
            fh.write(b"\x07torn-garbage")
        scan = read_records(path)
        assert scan.torn and scan.valid_end_offset == end
        reopened = WriteAheadLog(path, truncate_to=scan.valid_end_offset)
        assert reopened.end_offset == end
        reopened.append(1, _empty_batch())
        reopened.close()
        clean = read_records(path)
        assert not clean.torn and len(clean.records) == 2

    def test_mid_append_fault_leaves_torn_record(self, tmp_path):
        path = os.path.join(tmp_path, "wal.log")
        faults = FaultInjector({"wal.mid_append": 2})
        wal = WriteAheadLog(path, faults=faults)
        wal.append(0, _insert_batch(0, 4))
        with pytest.raises(InjectedCrash):
            wal.append(1, _insert_batch(4, 4))
        scan = read_records(path)
        assert scan.torn and len(scan.records) == 1


# --------------------------------------------------------------------- #
# Snapshots
# --------------------------------------------------------------------- #
class TestSnapshots:
    def _built_backend(self):
        backend = _fresh("gpulsm")
        for i in range(3):
            backend.insert(*_insert_batch_arrays(i * BATCH, BATCH))
        return backend

    def test_write_and_load_round_trip(self, tmp_path):
        backend = self._built_backend()
        manifest = write_snapshot(
            str(tmp_path), backend, tick_count=3, wal_offset=123
        )
        assert manifest["seq"] == 1 and manifest["kind"] == "gpulsm"
        assert manifest["tick_count"] == 3 and manifest["wal_offset"] == 123
        loaded = load_latest_manifest(str(tmp_path))
        assert loaded == json.loads(json.dumps(manifest))

        recovered = _fresh("gpulsm")
        report = recover(str(tmp_path), recovered)
        assert report.restored_from_snapshot and report.snapshot_ticks == 3
        probe = [0, 5, BATCH, 3 * BATCH - 1, 10_000]
        assert _lookup_values(recovered, probe) == _lookup_values(
            backend, probe
        )

    def test_gc_keeps_last_n(self, tmp_path):
        backend = self._built_backend()
        for tick in range(4):
            write_snapshot(
                str(tmp_path), backend, tick_count=tick, wal_offset=0, keep=2
            )
        seqs = [seq for seq, _ in list_manifests(str(tmp_path))]
        assert seqs == [3, 4]
        dirs = sorted(
            d for d in os.listdir(tmp_path) if d.startswith("snapshot-")
        )
        assert dirs == ["snapshot-00000003", "snapshot-00000004"]

    @pytest.mark.parametrize(
        "point", ["snapshot.mid_write", "snapshot.pre_rename"]
    )
    def test_crash_leaves_previous_snapshot_authoritative(
        self, tmp_path, point
    ):
        backend = self._built_backend()
        write_snapshot(str(tmp_path), backend, tick_count=2, wal_offset=50)
        faults = FaultInjector({point: 1})
        with pytest.raises(InjectedCrash):
            write_snapshot(
                str(tmp_path),
                backend,
                tick_count=3,
                wal_offset=99,
                faults=faults,
            )
        # The committed manifest still points at the first snapshot...
        manifest = load_latest_manifest(str(tmp_path))
        assert manifest["seq"] == 1 and manifest["tick_count"] == 2
        # ...and recovery sweeps the wreckage then restores it.
        recovered = _fresh("gpulsm")
        report = recover(str(tmp_path), recovered)
        assert report.snapshot_seq == 1
        assert not any(
            name.endswith(".tmp") for name in os.listdir(tmp_path)
        )
        # A retry after the crash must not reuse the torn sequence number.
        retry = write_snapshot(
            str(tmp_path), backend, tick_count=3, wal_offset=99
        )
        assert retry["seq"] == 2

    def test_clean_stale_temps(self, tmp_path):
        os.makedirs(os.path.join(tmp_path, "snapshot-00000009.tmp"))
        stray = os.path.join(tmp_path, "manifest-00000009.json.tmp")
        with open(stray, "w") as fh:
            fh.write("{}")
        removed = clean_stale_temps(str(tmp_path))
        assert len(removed) == 2
        assert os.listdir(tmp_path) == []

    def test_corrupt_manifest_falls_back(self, tmp_path):
        backend = self._built_backend()
        write_snapshot(str(tmp_path), backend, tick_count=1, wal_offset=0)
        write_snapshot(str(tmp_path), backend, tick_count=2, wal_offset=0)
        with open(os.path.join(tmp_path, "manifest-00000002.json"), "w") as fh:
            fh.write("{not json")
        manifest = load_latest_manifest(str(tmp_path))
        assert manifest["seq"] == 1

    def test_policies(self):
        assert not NoSnapshots().due(10**6, 10**9)
        policy = EveryNTicks(4)
        assert not policy.due(3, 0) and policy.due(4, 0)
        by_bytes = WalBytesPolicy(1024)
        assert not by_bytes.due(10**6, 1023) and by_bytes.due(0, 1024)


def _insert_batch_arrays(lo, n):
    keys = np.arange(lo, lo + n, dtype=np.uint64)
    return keys, keys * 10


# --------------------------------------------------------------------- #
# Engine / KVStore wiring
# --------------------------------------------------------------------- #
class TestEngineWiring:
    def test_durability_off_is_bitwise_invisible(self, tmp_path):
        batches = [_insert_batch(0, BATCH), _insert_batch(BATCH, BATCH)]
        plain = Engine(_fresh("gpulsm"))
        wired = Engine(
            _fresh("gpulsm"),
            durability=DurabilityConfig(directory=str(tmp_path / "d")),
        )
        for batch in batches:
            r0 = plain.apply(batch)
            r1 = wired.apply(batch)
            np.testing.assert_array_equal(r0.statuses, r1.statuses)
            np.testing.assert_array_equal(r0.values, r1.values)
        assert plain.stats().durability is None
        wired_stats = wired.stats().durability
        assert wired_stats["ticks"] == 2
        assert wired_stats["wal_appends"] == 2
        assert wired_stats["snapshot_runs"] == 0
        plain.close()
        wired.close()
        # Durability off wrote nothing anywhere.
        assert not os.path.exists(tmp_path / "plain")

    def test_kvstore_context_manager_and_recovery(self, tmp_path):
        directory = str(tmp_path / "store")
        with KVStore(
            batch_size=BATCH,
            durability=DurabilityConfig(directory=directory),
        ) as store:
            store.apply(_insert_batch(0, BATCH))
            store.apply(OpBatch.deletes(np.arange(5, dtype=np.uint64)))
            assert store.durability is not None
            assert store.durability.ticks == 2

        with KVStore(
            batch_size=BATCH,
            durability=DurabilityConfig(directory=directory),
        ) as reopened:
            report = reopened.durability.recovery_report
            assert report is not None and report.ticks == 2
            result = reopened.apply(
                OpBatch.lookups(np.array([0, 4, 10], dtype=np.uint64))
            )
            assert not result.result(0).found  # deleted
            assert not result.result(1).found  # deleted
            assert result.result(2).found and result.result(2).value == 100
            # Tick ids continue across the restart.
            assert reopened.durability.ticks == 3

    def test_threaded_close_drains_admitted_ops_into_wal(self, tmp_path):
        directory = str(tmp_path / "store")
        engine = Engine(
            _fresh("gpulsm"),
            durability=DurabilityConfig(directory=directory),
        ).start()
        tickets = [
            engine.submit_batch(_insert_batch(i * BATCH, BATCH))
            for i in range(4)
        ]
        # close() must drain every admitted submission into committed
        # (WAL-logged) ticks before the threads stop.
        engine.close()
        for ticket in tickets:
            assert ticket.result().ok
        scan = read_records(os.path.join(directory, WAL_FILENAME))
        assert not scan.torn
        logged = sum(batch.size for _, _, batch in scan.records)
        assert logged == 4 * BATCH

        recovered = _fresh("gpulsm")
        report = recover(directory, recovered)
        assert report.ticks == len(scan.records)
        probe = list(range(0, 4 * BATCH, 37))
        assert _lookup_values(recovered, probe) == [
            (True, k * 10) for k in probe
        ]

    def test_snapshot_policy_runs_between_ticks(self, tmp_path):
        directory = str(tmp_path / "store")
        engine = Engine(
            _fresh("gpulsm"),
            durability=DurabilityConfig(
                directory=directory, snapshot_policy=EveryNTicks(2)
            ),
        )
        for i in range(5):
            engine.apply(_insert_batch(i * BATCH, BATCH))
        stats = engine.stats().durability
        assert stats["snapshot_runs"] == 2  # after ticks 2 and 4
        engine.close()
        manifest = load_latest_manifest(directory)
        assert manifest["tick_count"] == 4
        # Recovery restores the snapshot and replays only the tail.
        recovered = _fresh("gpulsm")
        report = recover(directory, recovered)
        assert report.snapshot_ticks == 4 and report.replayed_ticks == 1

    def test_recover_false_requires_fresh_directory(self, tmp_path):
        directory = str(tmp_path / "store")
        engine = Engine(
            _fresh("gpulsm"),
            durability=DurabilityConfig(directory=directory),
        )
        engine.apply(_insert_batch(0, BATCH))
        engine.close()
        with pytest.raises(DurabilityError, match="fresh"):
            Engine(
                _fresh("gpulsm"),
                durability=DurabilityConfig(directory=directory, recover=False),
            )
        # A genuinely fresh directory is fine.
        fresh = Engine(
            _fresh("gpulsm"),
            durability=DurabilityConfig(
                directory=str(tmp_path / "fresh"), recover=False
            ),
        )
        fresh.close()

    def test_recovery_into_wrong_shape_raises(self, tmp_path):
        directory = str(tmp_path / "store")
        engine = Engine(
            _fresh("sharded4"),
            durability=DurabilityConfig(
                directory=directory, snapshot_policy=EveryNTicks(1)
            ),
        )
        engine.apply(_insert_batch(0, BATCH))
        engine.close()
        with pytest.raises(Exception, match="sharded|shards"):
            recover(directory, _fresh("gpulsm"))

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError):
            DurabilityConfig(directory="")
        with pytest.raises(ValueError):
            DurabilityConfig(directory=str(tmp_path), keep_snapshots=0)
        with pytest.raises(TypeError):
            DurabilityConfig(directory=str(tmp_path), snapshot_policy=object())

    def test_sharded_round_trip_through_engine(self, tmp_path):
        directory = str(tmp_path / "store")
        engine = Engine(
            _fresh("sharded4"),
            durability=DurabilityConfig(
                directory=directory, snapshot_policy=EveryNTicks(2)
            ),
        )
        for i in range(3):
            engine.apply(_insert_batch(i * BATCH, BATCH))
        engine.apply(OpBatch.deletes(np.arange(7, dtype=np.uint64)))
        live = engine.backend
        engine.close()

        recovered = _fresh("sharded4")
        report = recover(directory, recovered)
        assert report.ticks == 4 and report.restored_from_snapshot
        probe = list(range(0, 3 * BATCH, 13))
        assert _lookup_values(recovered, probe) == _lookup_values(live, probe)
