"""Fault-domain isolation: unit and regression tests for the resilience
layer (transactional ticks, poison quarantine, supervised loops,
deadline-aware shedding, health).

The regression tests at the bottom pin the two pre-existing hazards this
layer fixes: a planner exception used to kill the scheduler thread
(``plan_batch`` ran outside any try), and an exception in the executor's
completion stage (ticket resolution / telemetry / maintenance poll) used
to kill the executor thread — both wedging every subsequent submitter
forever.  Now the tick fails typed and the engine keeps serving.
"""

import threading
import time

import numpy as np
import pytest

from repro.api.kvstore import KVStore
from repro.api.ops import Op, OpBatch
from repro.core.lsm import GPULSM
from repro.durability.faults import FaultInjector, InjectedCrash
from repro.scale import ShardedLSM
from repro.serve import engine as engine_mod
from repro.serve.engine import Engine
from repro.serve.errors import (
    DeadlineExceededError,
    EngineInternalError,
    EngineSaturatedError,
    PoisonOperationError,
)
from repro.serve.resilience import (
    HealthMonitor,
    HealthState,
    ResilienceConfig,
    supports_rollback,
)
from repro.serve.scheduler import LoadSheddingPolicy, TickConfig

#: An insert of this key raises in both GPULSM (beyond the 31-bit key
#: domain) and ShardedLSM (key-domain check) before any mutation — the
#: deterministic poison operation of these tests.
POISON_KEY = 2**40

BATCH = 16


@pytest.fixture(autouse=True)
def no_leaked_threads():
    """Every engine must return the process to its thread baseline."""
    baseline = threading.active_count()
    yield
    deadline = time.monotonic() + 5.0
    while threading.active_count() > baseline and time.monotonic() < deadline:
        time.sleep(0.01)
    assert threading.active_count() <= baseline, (
        f"leaked threads: {[t.name for t in threading.enumerate()]}"
    )


def _engine(backend=None, resilience=None, target=64, linger=10.0, **kw):
    if backend is None:
        backend = GPULSM(batch_size=BATCH)
    return Engine(
        backend,
        config=TickConfig(target_tick_size=target, linger=linger, **kw),
        resilience=resilience,
    )


def _protected(**overrides):
    kw = dict(transactional_ticks=True, quarantine=True, supervised=True)
    kw.update(overrides)
    return ResilienceConfig(**kw)


# --------------------------------------------------------------------- #
# Config validation and capability probing
# --------------------------------------------------------------------- #
def test_resilience_config_validation():
    with pytest.raises(ValueError, match="quarantine requires"):
        ResilienceConfig(quarantine=True)
    with pytest.raises(ValueError):
        ResilienceConfig(max_internal_faults=0)
    with pytest.raises(ValueError):
        ResilienceConfig(recovery_ticks=0)
    with pytest.raises(ValueError):
        LoadSheddingPolicy(grace_s=-1.0)
    assert not ResilienceConfig().any_enabled
    assert ResilienceConfig(transactional_ticks=True).any_enabled


def test_transactional_requires_rollback_capable_backend():
    class NoRollback:
        pass

    assert supports_rollback(GPULSM(batch_size=BATCH))
    assert supports_rollback(
        ShardedLSM(num_shards=2, batch_size=BATCH, key_domain=64)
    )
    assert not supports_rollback(NoRollback())
    with pytest.raises(TypeError, match="snapshot_state"):
        Engine(
            NoRollback(),
            resilience=ResilienceConfig(transactional_ticks=True),
        )


def test_health_monitor_state_machine():
    m = HealthMonitor(recovery_ticks=2)
    assert m.state is HealthState.OK
    m.note_clean_tick()
    assert m.state is HealthState.OK
    m.note_internal_fault()
    assert m.state is HealthState.DEGRADED and m.internal_faults == 1
    m.note_clean_tick()
    assert m.state is HealthState.DEGRADED  # one clean tick is not enough
    m.note_clean_tick()
    assert m.state is HealthState.OK  # streak of recovery_ticks recovers
    m.note_internal_fault()
    m.force_failed()
    assert m.state is HealthState.FAILED
    m.note_clean_tick()
    assert m.state is HealthState.FAILED  # terminal


def test_fault_injector_recurring_mode():
    inj = FaultInjector(every={"engine.pre_plan": 3})
    fired = 0
    for _ in range(9):
        try:
            inj.check("engine.pre_plan")
        except InjectedCrash:
            fired += 1
    assert fired == 3  # every 3rd hit, no latching
    assert inj.recurring_fired == 3
    assert inj.crashed is None
    with pytest.raises(ValueError):
        FaultInjector({"engine.pre_plan": 1}, every={"engine.pre_plan": 2})


# --------------------------------------------------------------------- #
# Transactional ticks
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["gpulsm", "sharded"])
def test_transactional_rollback_restores_backend(kind):
    if kind == "gpulsm":
        backend = GPULSM(batch_size=BATCH)
    else:
        backend = ShardedLSM(num_shards=4, batch_size=BATCH, key_domain=64)
    store = KVStore(
        backend=backend,
        resilience=ResilienceConfig(transactional_ticks=True),
    )
    store.apply(OpBatch.inserts(np.arange(8, dtype=np.uint64),
                                np.full(8, 5, dtype=np.uint64)))
    reference = backend.lookup(np.arange(16, dtype=np.uint64))

    poisoned = OpBatch.concat([
        OpBatch.inserts(np.arange(8, 12, dtype=np.uint64)),
        OpBatch.inserts(np.array([POISON_KEY], dtype=np.uint64)),
    ])
    with pytest.raises(Exception):
        store.apply(poisoned)

    after = backend.lookup(np.arange(16, dtype=np.uint64))
    assert np.array_equal(reference.found, after.found)
    assert np.array_equal(reference.values, after.values)
    assert store.stats().rolled_back_ticks == 1
    # Client-attributable failure: health stays OK.
    assert store.health() is HealthState.OK
    store.close()


def _strict_partial_batch():
    """A STRICT tick whose first collapse run mutates before the poison
    run raises: [insert 0..7] [lookup] [insert POISON]."""
    return OpBatch.concat([
        OpBatch.inserts(np.arange(8, dtype=np.uint64)),
        OpBatch.lookups(np.array([0], dtype=np.uint64)),
        OpBatch.inserts(np.array([POISON_KEY], dtype=np.uint64)),
    ])


def test_without_transactional_partial_tick_persists():
    """The off-by-default contrast: a failed STRICT tick leaves the runs
    that executed before the poison raised."""
    backend = GPULSM(batch_size=BATCH)
    store = KVStore(backend=backend, consistency="strict")
    with pytest.raises(Exception):
        store.apply(_strict_partial_batch())
    # The innocent prefix landed (documented pre-existing behavior).
    found = backend.lookup(np.arange(8, dtype=np.uint64)).found
    assert found.all()
    assert store.stats().rolled_back_ticks == 0
    store.close()


def test_transactional_rolls_back_strict_partial_tick():
    """Same STRICT tick with transactional on: the mutated prefix is
    undone, backend bit-identical to pre-tick."""
    backend = GPULSM(batch_size=BATCH)
    store = KVStore(
        backend=backend,
        consistency="strict",
        resilience=ResilienceConfig(transactional_ticks=True),
    )
    with pytest.raises(Exception):
        store.apply(_strict_partial_batch())
    assert not backend.lookup(np.arange(8, dtype=np.uint64)).found.any()
    assert store.stats().rolled_back_ticks == 1
    store.close()


# --------------------------------------------------------------------- #
# Poison-op quarantine
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["gpulsm", "sharded"])
def test_quarantine_isolates_poison_and_retries_innocents(kind):
    def build():
        if kind == "gpulsm":
            return GPULSM(batch_size=BATCH)
        return ShardedLSM(num_shards=4, batch_size=BATCH, key_domain=64)

    # Fault-free reference run: same innocents, no poison co-batched.
    ref_engine = _engine(build())
    with ref_engine:
        r1 = ref_engine.submit_batch(
            OpBatch.inserts(np.arange(8, dtype=np.uint64),
                            np.full(8, 3, dtype=np.uint64)))
        r2 = ref_engine.submit_batch(OpBatch.lookups(np.arange(8, dtype=np.uint64)))
        ref_engine.flush(timeout=10)
        ref_a = r1.result(timeout=5)
        ref_b = r2.result(timeout=5)

    engine = _engine(build(), resilience=_protected())
    with engine:
        t1 = engine.submit_batch(
            OpBatch.inserts(np.arange(8, dtype=np.uint64),
                            np.full(8, 3, dtype=np.uint64)))
        bad = engine.submit(Op.insert(POISON_KEY, 1))
        t2 = engine.submit_batch(OpBatch.lookups(np.arange(8, dtype=np.uint64)))
        engine.flush(timeout=10)

        with pytest.raises(PoisonOperationError) as exc_info:
            bad.result(timeout=5)
        assert exc_info.value.cause is not None
        assert exc_info.value.batch is not None

        got_a = t1.result(timeout=5)
        got_b = t2.result(timeout=5)
        # Innocent answers are bit-identical to the fault-free run.
        for ref, got in ((ref_a, got_a), (ref_b, got_b)):
            assert np.array_equal(np.asarray(ref.found), np.asarray(got.found))
            assert np.array_equal(np.asarray(ref.values), np.asarray(got.values))

        stats = engine.stats()
        assert stats.quarantined_ticks == 1
        assert stats.poisoned_entries == 1
        assert stats.rolled_back_ticks == 1
        # Poison is the client's fault, not the engine's.
        assert stats.health == "ok"


def test_all_poison_tick_fails_everyone_typed():
    engine = _engine(resilience=_protected())
    with engine:
        bad1 = engine.submit(Op.insert(POISON_KEY, 1))
        bad2 = engine.submit(Op.insert(POISON_KEY + 1, 2))
        engine.flush(timeout=10)
        for t in (bad1, bad2):
            with pytest.raises(PoisonOperationError):
                t.result(timeout=5)
        assert engine.stats().poisoned_entries == 2
        # The engine keeps serving afterwards.
        ok = engine.submit(Op.insert(3, 9))
        engine.flush(timeout=10)
        ok.result(timeout=5)


@pytest.mark.parametrize("point", [
    "engine.pre_plan",
    "engine.mid_execute",
    "engine.post_execute_pre_wal",
])
def test_transient_injected_fault_retries_all(point):
    """A transient fault (nobody is poison) retries the whole tick: every
    ticket still resolves with a result."""
    inj = FaultInjector({point: 1})
    engine = _engine(resilience=_protected(fault_injector=inj))
    with engine:
        tickets = [
            engine.submit_batch(
                OpBatch.inserts(np.arange(i * 4, i * 4 + 4, dtype=np.uint64)))
            for i in range(3)
        ]
        engine.flush(timeout=10)
        for t in tickets:
            t.result(timeout=5)
        lk = engine.submit_batch(OpBatch.lookups(np.arange(12, dtype=np.uint64)))
        engine.flush(timeout=10)
        assert np.asarray(lk.result(timeout=5).found).all()
        assert inj.crashed == point


def test_pre_resolve_fault_fails_tick_typed_but_commits():
    """A crash after commit but before resolution: tickets fail typed,
    the state is committed, the loop keeps serving, health degrades."""
    inj = FaultInjector({"engine.pre_resolve": 1})
    engine = _engine(resilience=_protected(fault_injector=inj))
    with engine:
        t = engine.submit_batch(OpBatch.inserts(np.arange(4, dtype=np.uint64)))
        engine.flush(timeout=10)
        with pytest.raises(EngineInternalError):
            t.result(timeout=5)
        assert engine.health() is HealthState.DEGRADED
        lk = engine.submit_batch(OpBatch.lookups(np.arange(4, dtype=np.uint64)))
        engine.flush(timeout=10)
        assert np.asarray(lk.result(timeout=5).found).all()  # committed
        assert engine.stats().internal_faults == 1


# --------------------------------------------------------------------- #
# Deadlines and load shedding
# --------------------------------------------------------------------- #
def test_deadline_expired_in_queue_is_shed():
    engine = _engine(target=4, linger=0.01)
    with engine:
        doomed = engine.submit(Op.lookup(1), deadline=0.0)
        time.sleep(0.002)
        fine = engine.submit_batch(OpBatch.inserts(np.arange(4, dtype=np.uint64)))
        engine.flush(timeout=10)
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=5)
        fine.result(timeout=5)
        assert engine.stats().deadline_shed_ops == 1


def test_negative_deadline_rejected():
    engine = _engine()
    with engine:
        with pytest.raises(ValueError):
            engine.submit(Op.lookup(1), deadline=-0.5)


def test_shed_only_cut_does_not_wedge_flush():
    """A cut in which everything was shed must still complete flush()."""
    engine = _engine(target=4, linger=0.01)
    with engine:
        doomed = engine.submit(Op.lookup(1), deadline=0.0)
        time.sleep(0.002)
        engine.flush(timeout=10)  # must return even with nothing to run
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=5)


def test_load_shedding_under_sustained_saturation():
    engine = _engine(
        target=8,
        linger=30.0,
        max_queue_depth=8,
        resilience=ResilienceConfig(shedding=LoadSheddingPolicy(grace_s=0.02)),
    )
    engine.start()
    held = engine.submit_batch(OpBatch.inserts(np.arange(6, dtype=np.uint64)))
    t0 = time.monotonic()
    with pytest.raises(EngineSaturatedError, match="load shed"):
        engine.submit_batch(OpBatch.inserts(np.arange(10, 14, dtype=np.uint64)))
    assert time.monotonic() - t0 >= 0.02
    assert engine.stats().admission_shed_ops == 4
    engine.close()  # drains the held batch as a flush tick
    held.result(timeout=5)


# --------------------------------------------------------------------- #
# Supervision and fail-stop
# --------------------------------------------------------------------- #
def test_regression_scheduler_survives_plan_batch_raising(monkeypatch):
    """Satellite regression: a raising planner used to kill the scheduler
    thread (plan_batch ran outside any try) and wedge every submitter.
    Now the tick fails with the planner's error and serving continues —
    even with every resilience knob off."""
    real = engine_mod.plan_batch
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("injected planner bug")
        return real(*args, **kwargs)

    monkeypatch.setattr(engine_mod, "plan_batch", flaky)
    engine = _engine(target=4, linger=0.001)
    with engine:
        t = engine.submit_batch(OpBatch.inserts(np.arange(4, dtype=np.uint64)))
        engine.flush(timeout=10)
        with pytest.raises(RuntimeError, match="injected planner bug"):
            t.result(timeout=5)
        # The scheduler thread is alive: the next tick plans and runs.
        ok = engine.submit_batch(OpBatch.inserts(np.arange(4, 8, dtype=np.uint64)))
        engine.flush(timeout=10)
        ok.result(timeout=5)


def test_regression_executor_survives_completion_stage_raising(monkeypatch):
    """Satellite regression: an exception in the executor's completion
    stage (ticket resolution / telemetry) used to kill the executor
    thread after the backend mutated, stranding tickets forever.  Now the
    dangling tickets fail typed and the loop keeps serving."""
    real = engine_mod.slice_result_batch
    calls = {"n": 0}

    def flaky(result, lo, hi):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("injected resolution bug")
        return real(result, lo, hi)

    monkeypatch.setattr(engine_mod, "slice_result_batch", flaky)
    engine = _engine(target=4, linger=0.001)
    with engine:
        t = engine.submit_batch(OpBatch.inserts(np.arange(4, dtype=np.uint64)))
        engine.flush(timeout=10)
        with pytest.raises(EngineInternalError):
            t.result(timeout=5)
        assert engine.health() is HealthState.DEGRADED
        ok = engine.submit_batch(OpBatch.lookups(np.arange(4, dtype=np.uint64)))
        engine.flush(timeout=10)
        assert np.asarray(ok.result(timeout=5).found).all()


def test_maintenance_fault_degrades_but_keeps_serving(monkeypatch):
    backend = GPULSM(batch_size=BATCH)

    def bad_maintenance():
        raise RuntimeError("injected maintenance bug")

    monkeypatch.setattr(backend, "run_due_maintenance", bad_maintenance,
                        raising=False)
    engine = _engine(
        backend,
        target=4,
        linger=0.001,
        resilience=ResilienceConfig(supervised=True, recovery_ticks=1),
    )
    with engine:
        t = engine.submit_batch(OpBatch.inserts(np.arange(4, dtype=np.uint64)))
        engine.flush(timeout=10)
        t.result(timeout=5)  # the tick's clients already have answers
        assert engine.health() is HealthState.DEGRADED
        # Recovery: a clean tick (with maintenance fixed) restores OK.
        monkeypatch.setattr(backend, "run_due_maintenance", lambda: None,
                            raising=False)
        ok = engine.submit_batch(OpBatch.lookups(np.arange(4, dtype=np.uint64)))
        engine.flush(timeout=10)
        ok.result(timeout=5)
        assert engine.health() is HealthState.OK


def test_supervised_executor_loop_restarts_in_place(monkeypatch):
    """A crash of the executor loop body itself: supervised, the loop
    restarts on the same thread (no leak), the in-flight tick fails
    typed, and the engine keeps serving."""
    real = Engine._execute_tick
    calls = {"n": 0}

    def flaky(self, tick, plan):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("injected executor crash")
        return real(self, tick, plan)

    monkeypatch.setattr(Engine, "_execute_tick", flaky)
    engine = _engine(target=4, linger=0.001, resilience=_protected())
    with engine:
        t = engine.submit_batch(OpBatch.inserts(np.arange(4, dtype=np.uint64)))
        engine.flush(timeout=10)
        with pytest.raises(EngineInternalError):
            t.result(timeout=5)
        ok = engine.submit_batch(OpBatch.inserts(np.arange(4, 8, dtype=np.uint64)))
        engine.flush(timeout=10)
        ok.result(timeout=5)
        stats = engine.stats()
        assert stats.loop_restarts >= 1
        assert stats.health == "degraded"


def test_unsupervised_loop_crash_fail_stops_without_wedging(monkeypatch):
    """Without supervision a loop crash must fail-stop, not wedge: the
    in-flight ticket fails typed, flush returns, submit refuses."""
    def always_crash(self, tick, plan):
        raise RuntimeError("injected executor crash")

    monkeypatch.setattr(Engine, "_execute_tick", always_crash)
    engine = _engine(target=4, linger=0.001)
    with engine:
        t = engine.submit_batch(OpBatch.inserts(np.arange(4, dtype=np.uint64)))
        engine.flush(timeout=10)
        with pytest.raises(EngineInternalError):
            t.result(timeout=10)
        assert engine.health() is HealthState.FAILED
        with pytest.raises(EngineInternalError):
            engine.submit(Op.lookup(1))
        engine.flush(timeout=10)  # must not hang on a failed engine
        assert engine.stats().health == "failed"


def test_max_internal_faults_budget_fail_stops(monkeypatch):
    """Supervised restarts are bounded: past the fault budget the engine
    fail-stops instead of crash-looping."""
    def always_crash(self, tick, plan):
        raise RuntimeError("persistent executor bug")

    monkeypatch.setattr(Engine, "_execute_tick", always_crash)
    engine = _engine(
        target=4,
        linger=0.001,
        resilience=ResilienceConfig(supervised=True, max_internal_faults=2),
    )
    with engine:
        for i in range(3):
            try:
                t = engine.submit_batch(
                    OpBatch.inserts(np.arange(i * 4, i * 4 + 4, dtype=np.uint64)))
            except EngineInternalError:
                break  # already fail-stopped
            engine.flush(timeout=10)
            with pytest.raises(EngineInternalError):
                t.result(timeout=10)
            if engine.health() is HealthState.FAILED:
                break
        assert engine.health() is HealthState.FAILED
        assert engine.stats().internal_faults >= 2


# --------------------------------------------------------------------- #
# Off-by-default bit-identity
# --------------------------------------------------------------------- #
def test_default_config_is_bit_identical_to_no_config():
    def run(resilience):
        engine = _engine(GPULSM(batch_size=BATCH), resilience=resilience,
                         target=8, linger=0.001)
        outs = []
        with engine:
            for i in range(4):
                t = engine.submit_batch(OpBatch.concat([
                    OpBatch.inserts(np.arange(i * 4, i * 4 + 4, dtype=np.uint64),
                                    np.full(4, i, dtype=np.uint64)),
                    OpBatch.lookups(np.arange(0, 8, dtype=np.uint64)),
                ]))
                engine.flush(timeout=10)
                outs.append(t.result(timeout=5))
            stats = engine.stats()
        return outs, stats

    ref_outs, ref_stats = run(None)
    got_outs, got_stats = run(ResilienceConfig())
    for ref, got in zip(ref_outs, got_outs):
        assert np.array_equal(np.asarray(ref.found), np.asarray(got.found))
        assert np.array_equal(np.asarray(ref.values), np.asarray(got.values))
        assert np.array_equal(np.asarray(ref.statuses), np.asarray(got.statuses))
    assert ref_stats.ticks == got_stats.ticks
    assert ref_stats.ops_completed == got_stats.ops_completed
    assert got_stats.rolled_back_ticks == 0
    assert got_stats.health == "ok"
