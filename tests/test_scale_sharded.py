"""ShardedLSM correctness against the sequential semantics oracle.

The Hypothesis property test drives a :class:`ShardedLSM` and the
:class:`ReferenceDictionary` with identical mixed insert/delete traces —
interleaved with cleanups — across 1, 2 and 8 shards, checking
lookup/count/range agreement after every batch.  Because the front-end
canonicalises each batch before routing, the sharded dictionary must obey
exactly the batch semantics of Section III-A, shard boundaries included.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.semantics import BatchOp, ReferenceDictionary
from repro.scale import ShardedLSM

KEY_SPACE = 64
BATCH = 16

key_strategy = st.integers(min_value=0, max_value=KEY_SPACE - 1)
value_strategy = st.integers(min_value=0, max_value=1000)
pair_strategy = st.tuples(key_strategy, value_strategy)
batch_strategy = st.tuples(
    st.lists(pair_strategy, max_size=6),
    st.lists(key_strategy, max_size=6),
    st.booleans(),  # run cleanup after this batch?
).filter(lambda t: len(t[0]) + len(t[1]) >= 1)
trace_strategy = st.lists(batch_strategy, min_size=1, max_size=8)


def apply_and_compare(num_shards, trace):
    sharded = ShardedLSM(
        num_shards=num_shards,
        batch_size=BATCH,
        key_domain=KEY_SPACE,
        validate_invariants=True,
    )
    ref = ReferenceDictionary()
    all_keys = np.arange(KEY_SPACE, dtype=np.uint32)
    k1 = np.array([0, KEY_SPACE // 2, 10, 7], dtype=np.uint32)
    k2 = np.array([KEY_SPACE - 1, KEY_SPACE - 1, 20, 7], dtype=np.uint32)

    for inserts, deletes, do_cleanup in trace:
        ins_keys = np.array([k for k, _ in inserts], dtype=np.uint32)
        ins_vals = np.array([v for _, v in inserts], dtype=np.uint32)
        del_keys = np.array(deletes, dtype=np.uint32)
        sharded.update(
            insert_keys=ins_keys if ins_keys.size else None,
            insert_values=ins_vals if ins_keys.size else None,
            delete_keys=del_keys if del_keys.size else None,
        )
        ops = [BatchOp(False, int(k), int(v)) for k, v in inserts]
        ops += [BatchOp(True, int(k)) for k in deletes]
        ref.apply_batch(ops)
        if do_cleanup:
            sharded.cleanup()

        # Lookup agreement over the whole keyspace.
        res = sharded.lookup(all_keys)
        expected = ref.lookup(all_keys.tolist())
        for i, exp in enumerate(expected):
            if exp is None:
                assert not res.found[i]
            else:
                assert res.found[i] and int(res.values[i]) == exp

        # Count and range agreement, including a single-key range.
        counts = sharded.count(k1, k2)
        rr = sharded.range_query(k1, k2)
        for i in range(k1.size):
            expected_pairs = ref.range_query(int(k1[i]), int(k2[i]))
            assert counts[i] == len(expected_pairs)
            keys_i, vals_i = rr.query_slice(i)
            got = [(int(k), int(v)) for k, v in zip(keys_i, vals_i)]
            assert got == expected_pairs


@pytest.mark.parametrize("num_shards", [1, 2, 8])
class TestShardedAgainstOracle:
    @settings(max_examples=12, deadline=None)
    @given(trace=trace_strategy)
    def test_mixed_traces_match_oracle(self, num_shards, trace):
        apply_and_compare(num_shards, trace)


class TestShardedMechanics:
    def test_shard_ranges_cover_the_domain(self):
        sharded = ShardedLSM(num_shards=8, batch_size=16, key_domain=100)
        lo0, _ = sharded.shard_range(0)
        assert lo0 == 0
        previous_hi = -1
        for s in range(8):
            lo, hi = sharded.shard_range(s)
            assert lo == previous_hi + 1
            previous_hi = hi
        assert previous_hi == 99

    def test_boundary_keys_route_consistently(self):
        sharded = ShardedLSM(num_shards=4, batch_size=16, key_domain=64)
        boundary = np.array([0, 15, 16, 31, 32, 47, 48, 63], dtype=np.uint32)
        sharded.insert(boundary, boundary * 2)
        res = sharded.lookup(boundary)
        assert res.found.all()
        assert np.array_equal(res.values, boundary * 2)
        # Each consecutive pair landed in its own shard.
        assert all(s.num_elements > 0 for s in sharded.shards)

    def test_skewed_batch_chunks_through_small_shard_batches(self):
        # All keys hash to shard 0; its segment (12 ops) exceeds the
        # shard batch size (2) and must be applied in chunks.
        sharded = ShardedLSM(
            num_shards=8, batch_size=16, shard_batch_size=2, key_domain=1 << 20
        )
        keys = np.arange(12, dtype=np.uint32)
        sharded.insert(keys, keys + 100)
        res = sharded.lookup(keys)
        assert res.found.all()
        assert np.array_equal(res.values, keys + 100)
        assert sharded.shards[0].num_elements > 0
        assert all(s.num_elements == 0 for s in sharded.shards[1:])

    def test_bulk_build_routes_across_shards(self):
        sharded = ShardedLSM(num_shards=4, batch_size=16, key_domain=1000)
        keys = np.arange(0, 1000, 7, dtype=np.uint32)
        sharded.bulk_build(keys, keys * 3)
        assert int(sharded.count(np.array([0]), np.array([999]))[0]) == keys.size
        res = sharded.lookup(keys)
        assert res.found.all() and np.array_equal(res.values, keys * 3)

    def test_out_of_domain_insert_rejected(self):
        sharded = ShardedLSM(num_shards=2, batch_size=8, key_domain=100)
        with pytest.raises(ValueError, match="sharded key domain"):
            sharded.insert(np.array([100], dtype=np.uint32), np.array([1], dtype=np.uint32))

    def test_negative_lookup_key_rejected_with_clear_error(self):
        sharded = ShardedLSM(num_shards=2, batch_size=8, key_domain=100)
        # Negative keys get their own message now (they used to be lumped
        # into the upper-domain error, which was misleading).
        with pytest.raises(ValueError, match="non-negative"):
            sharded.lookup(np.array([-1], dtype=np.int64))

    def test_out_of_domain_lookup_is_not_found(self):
        sharded = ShardedLSM(num_shards=2, batch_size=8, key_domain=100)
        sharded.insert(np.array([5], dtype=np.uint32), np.array([50], dtype=np.uint32))
        assert not sharded.lookup(np.array([5000], dtype=np.uint32)).found[0]

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="num_shards"):
            ShardedLSM(num_shards=0)
        with pytest.raises(ValueError, match="num_shards"):
            ShardedLSM(num_shards=33)

    def test_oversized_batch_rejected(self):
        sharded = ShardedLSM(num_shards=2, batch_size=8, key_domain=100)
        with pytest.raises(ValueError, match="split the work"):
            sharded.insert(
                np.arange(9, dtype=np.uint32), np.arange(9, dtype=np.uint32)
            )

    def test_profile_aggregates_devices(self):
        sharded = ShardedLSM(num_shards=4, batch_size=16, key_domain=1 << 16)
        keys = np.random.default_rng(0).integers(0, 1 << 16, 16, dtype=np.uint32)
        sharded.insert(keys, keys)
        profile = sharded.profile()
        assert profile["router_seconds"] > 0
        assert len(profile["shard_seconds"]) == 4
        assert profile["serial_seconds"] >= profile["parallel_seconds"]
        assert profile["parallel_seconds"] >= profile["router_seconds"]
        stats = sharded.shard_stats()
        assert sum(s["total_insertions"] for s in stats) == sharded.total_insertions
        sharded.reset_counters()
        assert sharded.profile()["serial_seconds"] == 0.0

    def test_key_only_mode(self):
        sharded = ShardedLSM(num_shards=2, batch_size=8, key_only=True, key_domain=64)
        sharded.insert(np.array([1, 40, 63], dtype=np.uint32))
        res = sharded.lookup(np.array([1, 2, 63], dtype=np.uint32))
        assert res.values is None
        assert list(res.found) == [True, False, True]
        with pytest.raises(ValueError, match="no values"):
            sharded.insert(np.array([1], dtype=np.uint32), np.array([1], dtype=np.uint32))
