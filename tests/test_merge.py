"""Unit tests for the merge-path stable merge (repro.primitives.merge)."""

import numpy as np
import pytest

from repro.primitives.merge import merge_keys, merge_pairs, merge_path_partitions


def _strip_lsb(words):
    return words >> 1


class TestMergeKeys:
    def test_merges_sorted_arrays(self, device, rng):
        a = np.sort(rng.integers(0, 10000, 500, dtype=np.uint32))
        b = np.sort(rng.integers(0, 10000, 700, dtype=np.uint32))
        out = merge_keys(a, b, device=device)
        assert np.array_equal(out, np.sort(np.concatenate([a, b]), kind="stable"))

    def test_a_side_wins_ties(self, device):
        a = np.array([5, 5, 9], dtype=np.uint32)
        b = np.array([5, 7, 9], dtype=np.uint32)
        out = merge_keys(a, b, device=device)
        assert list(out) == [5, 5, 5, 7, 9, 9]
        # Verify with tagged values via merge_pairs below; here just ordering.

    def test_empty_sides(self, device):
        a = np.array([1, 2, 3], dtype=np.uint32)
        empty = np.zeros(0, dtype=np.uint32)
        assert np.array_equal(merge_keys(a, empty, device=device), a)
        assert np.array_equal(merge_keys(empty, a, device=device), a)
        assert merge_keys(empty, empty, device=device).size == 0

    def test_dtype_mismatch_rejected(self, device):
        with pytest.raises(TypeError):
            merge_keys(
                np.zeros(2, dtype=np.uint32), np.zeros(2, dtype=np.uint64),
                device=device,
            )

    def test_key_function_ignores_status_bit(self, device):
        # a holds a "tombstone" (even word) for key 3; b holds a regular
        # element (odd word) for key 3.  With the strip-LSB comparator the
        # a-side element must come first despite having the smaller word.
        a = np.array([3 << 1], dtype=np.uint32)          # tombstone of key 3
        b = np.array([(3 << 1) | 1], dtype=np.uint32)    # regular key 3
        out = merge_keys(a, b, key=_strip_lsb, device=device)
        assert list(out) == [3 << 1, (3 << 1) | 1]
        # and symmetric: a regular in A precedes a tombstone in B
        out2 = merge_keys(b, a, key=_strip_lsb, device=device)
        assert list(out2) == [(3 << 1) | 1, 3 << 1]

    def test_interleaved_runs(self, device):
        a = np.array([0, 2, 4, 6], dtype=np.uint32)
        b = np.array([1, 3, 5, 7], dtype=np.uint32)
        assert list(merge_keys(a, b, device=device)) == list(range(8))

    def test_records_traffic(self, device):
        a = np.arange(0, 2048, 2, dtype=np.uint32)
        b = np.arange(1, 2048, 2, dtype=np.uint32)
        before = device.snapshot()
        merge_keys(a, b, device=device)
        delta = device.counter.since(before)
        assert delta.total_bytes >= a.nbytes + b.nbytes
        assert delta.launches >= 1


class TestMergePairs:
    def test_values_travel_with_keys(self, device, rng):
        a_k = np.sort(rng.integers(0, 1000, 128, dtype=np.uint32))
        b_k = np.sort(rng.integers(0, 1000, 256, dtype=np.uint32))
        a_v = rng.integers(0, 100, 128, dtype=np.uint32)
        b_v = rng.integers(0, 100, 256, dtype=np.uint32)
        out_k, out_v = merge_pairs(a_k, a_v, b_k, b_v, device=device)
        # Reconstruct an oracle with a stable sort of tagged pairs (A first).
        all_k = np.concatenate([a_k, b_k])
        all_v = np.concatenate([a_v, b_v])
        order = np.argsort(all_k, kind="stable")
        # The oracle is only valid if A-side elements precede B-side ones on
        # ties, which argsort(stable) over the concatenation guarantees.
        assert np.array_equal(out_k, all_k[order])
        assert np.array_equal(out_v, all_v[order])

    def test_tie_break_prefers_a_values(self, device):
        a_k = np.array([5], dtype=np.uint32)
        b_k = np.array([5], dtype=np.uint32)
        a_v = np.array([111], dtype=np.uint32)
        b_v = np.array([222], dtype=np.uint32)
        _, out_v = merge_pairs(a_k, a_v, b_k, b_v, device=device)
        assert list(out_v) == [111, 222]

    def test_shape_mismatch_rejected(self, device):
        k = np.zeros(3, dtype=np.uint32)
        with pytest.raises(ValueError):
            merge_pairs(k, np.zeros(2, dtype=np.uint32), k, np.zeros(3, dtype=np.uint32),
                        device=device)

    def test_value_dtype_mismatch_rejected(self, device):
        k = np.zeros(2, dtype=np.uint32)
        with pytest.raises(TypeError):
            merge_pairs(k, np.zeros(2, dtype=np.uint32), k, np.zeros(2, dtype=np.uint64),
                        device=device)


class TestMergePathPartitions:
    def test_partitions_are_valid_splits(self, device, rng):
        a = np.sort(rng.integers(0, 500, 200, dtype=np.uint32))
        b = np.sort(rng.integers(0, 500, 300, dtype=np.uint32))
        tile = 64
        parts = merge_path_partitions(a, b, tile)
        merged = merge_keys(a, b, device=device)
        total = a.size + b.size
        for idx, a_count in enumerate(parts):
            diag = min(idx * tile, total)
            b_count = diag - a_count
            assert 0 <= a_count <= a.size
            assert 0 <= b_count <= b.size
            # The first `diag` merged outputs must be exactly a_count A's and
            # b_count B's worth of elements (multiset equality of the prefix).
            prefix = np.sort(merged[:diag])
            oracle = np.sort(np.concatenate([a[:a_count], b[:b_count]]))
            assert np.array_equal(prefix, oracle)

    def test_last_partition_consumes_everything(self):
        a = np.arange(10, dtype=np.uint32)
        b = np.arange(10, dtype=np.uint32)
        parts = merge_path_partitions(a, b, 7)
        assert parts[-1] == a.size

    def test_rejects_bad_tile(self):
        a = np.arange(4, dtype=np.uint32)
        with pytest.raises(ValueError):
            merge_path_partitions(a, a, 0)
