"""Unit tests for the GPU sorted-array baseline (repro.baselines.sorted_array)."""

import numpy as np
import pytest

from repro.baselines.sorted_array import GPUSortedArray


class TestBuildAndInsert:
    def test_bulk_build_sorts(self, device, rng):
        keys = rng.choice(100000, 500, replace=False).astype(np.uint32)
        values = rng.integers(0, 1000, 500, dtype=np.uint32)
        sa = GPUSortedArray(device=device)
        sa.bulk_build(keys, values)
        assert np.all(np.diff(sa.keys.astype(np.int64)) > 0)
        assert sa.num_elements == 500

    def test_bulk_build_requires_empty(self, device, rng):
        sa = GPUSortedArray(device=device)
        sa.bulk_build(np.arange(4, dtype=np.uint32), np.arange(4, dtype=np.uint32))
        with pytest.raises(RuntimeError):
            sa.bulk_build(np.arange(4, dtype=np.uint32), np.arange(4, dtype=np.uint32))

    def test_bulk_build_dedups_keeping_first(self, device):
        sa = GPUSortedArray(device=device)
        sa.bulk_build(np.array([5, 5, 7], dtype=np.uint32),
                      np.array([1, 2, 3], dtype=np.uint32))
        assert sa.num_elements == 2
        res = sa.lookup(np.array([5], dtype=np.uint32))
        assert res.values[0] == 1

    def test_insert_into_empty(self, device):
        sa = GPUSortedArray(device=device)
        sa.insert(np.array([3, 1], dtype=np.uint32), np.array([30, 10], dtype=np.uint32))
        assert list(sa.keys) == [1, 3]

    def test_insert_merges_and_replaces(self, device):
        sa = GPUSortedArray(device=device)
        sa.bulk_build(np.array([1, 5, 9], dtype=np.uint32),
                      np.array([10, 50, 90], dtype=np.uint32))
        sa.insert(np.array([5, 7], dtype=np.uint32), np.array([55, 70], dtype=np.uint32))
        res = sa.lookup(np.array([5, 7, 9], dtype=np.uint32))
        assert list(res.values) == [55, 70, 90]
        assert sa.num_elements == 4  # 1, 5, 7, 9

    def test_key_only_mode(self, device):
        sa = GPUSortedArray(device=device, key_only=True)
        sa.insert(np.array([2, 4], dtype=np.uint32))
        res = sa.lookup(np.array([2, 3], dtype=np.uint32))
        assert res.values is None
        assert bool(res.found[0]) and not bool(res.found[1])

    def test_key_domain_enforced(self, device):
        sa = GPUSortedArray(device=device)
        with pytest.raises(ValueError):
            sa.insert(np.array([1 << 31], dtype=np.uint64),
                      np.array([1], dtype=np.uint32))

    def test_empty_insert_rejected(self, device):
        sa = GPUSortedArray(device=device)
        with pytest.raises(ValueError):
            sa.insert(np.zeros(0, dtype=np.uint32), np.zeros(0, dtype=np.uint32))

    def test_insert_traffic_grows_with_array_size(self, device, rng):
        # The SA's weakness: inserting a small batch costs O(n).
        small = GPUSortedArray(device=device)
        small.bulk_build(np.arange(256, dtype=np.uint32),
                         np.zeros(256, dtype=np.uint32))
        big = GPUSortedArray(device=device)
        big.bulk_build(np.arange(4096, dtype=np.uint32),
                       np.zeros(4096, dtype=np.uint32))
        batch_k = np.arange(10000, 10064, dtype=np.uint32)
        batch_v = np.zeros(64, dtype=np.uint32)
        before = device.snapshot()
        small.insert(batch_k, batch_v)
        small_traffic = device.counter.since(before).total_bytes
        before = device.snapshot()
        big.insert(batch_k, batch_v)
        big_traffic = device.counter.since(before).total_bytes
        assert big_traffic > small_traffic


class TestDelete:
    def test_delete_removes_keys(self, device):
        sa = GPUSortedArray(device=device)
        sa.bulk_build(np.arange(10, dtype=np.uint32), np.arange(10, dtype=np.uint32))
        sa.delete(np.array([3, 7], dtype=np.uint32))
        assert sa.num_elements == 8
        res = sa.lookup(np.array([3, 7, 4], dtype=np.uint32))
        assert not res.found[0] and not res.found[1] and res.found[2]

    def test_delete_missing_key_is_noop(self, device):
        sa = GPUSortedArray(device=device)
        sa.bulk_build(np.arange(5, dtype=np.uint32), np.arange(5, dtype=np.uint32))
        sa.delete(np.array([100], dtype=np.uint32))
        assert sa.num_elements == 5

    def test_delete_from_empty(self, device):
        sa = GPUSortedArray(device=device)
        sa.delete(np.array([1], dtype=np.uint32))
        assert sa.num_elements == 0


class TestQueries:
    @pytest.fixture
    def built(self, device, rng):
        keys = np.arange(0, 2000, 10, dtype=np.uint32)
        values = keys * 2
        sa = GPUSortedArray(device=device)
        sa.bulk_build(keys, values.astype(np.uint32))
        return sa

    def test_lookup_existing_and_missing(self, built):
        res = built.lookup(np.array([20, 25], dtype=np.uint32))
        assert res.found[0] and res.values[0] == 40
        assert not res.found[1]

    def test_lookup_empty_array(self, device):
        sa = GPUSortedArray(device=device)
        res = sa.lookup(np.array([1], dtype=np.uint32))
        assert not res.found[0]

    def test_count_matches_brute_force(self, built):
        k1 = np.array([15, 0, 1990], dtype=np.uint32)
        k2 = np.array([55, 1999, 1999], dtype=np.uint32)
        counts = built.count(k1, k2)
        keys = built.keys
        for i in range(3):
            expected = int(np.count_nonzero((keys >= k1[i]) & (keys <= k2[i])))
            assert counts[i] == expected

    def test_range_matches_brute_force(self, built):
        k1 = np.array([100, 500], dtype=np.uint32)
        k2 = np.array([200, 505], dtype=np.uint32)
        res = built.range_query(k1, k2)
        for i in range(2):
            keys, values = res.query_slice(i)
            expected = [k for k in built.keys if k1[i] <= k <= k2[i]]
            assert list(keys) == expected
            assert list(values) == [k * 2 for k in expected]

    def test_count_shape_mismatch_rejected(self, built):
        with pytest.raises(ValueError):
            built.count(np.array([1], dtype=np.uint32),
                        np.array([1, 2], dtype=np.uint32))

    def test_empty_query_sets(self, built):
        assert built.count(np.zeros(0, dtype=np.uint32),
                           np.zeros(0, dtype=np.uint32)).size == 0
        res = built.range_query(np.zeros(0, dtype=np.uint32),
                                np.zeros(0, dtype=np.uint32))
        assert len(res) == 0

    def test_memory_usage(self, built):
        assert built.memory_usage_bytes == built.num_elements * 8


class TestAgainstLSM:
    def test_same_answers_as_lsm(self, device, rng):
        """The SA and the LSM must answer identical workloads identically
        (the paper's comparison is about speed, not semantics)."""
        from repro.core.lsm import GPULSM

        keys = rng.choice(100000, 256, replace=False).astype(np.uint32)
        values = rng.integers(0, 1000, 256, dtype=np.uint32)
        sa = GPUSortedArray(device=device)
        sa.bulk_build(keys, values)
        lsm = GPULSM(batch_size=32, device=device)
        lsm.bulk_build(keys, values)

        queries = np.concatenate([keys[:50],
                                  rng.integers(100001, 200000, 50, dtype=np.uint32)])
        r_sa = sa.lookup(queries)
        r_lsm = lsm.lookup(queries)
        assert np.array_equal(r_sa.found, r_lsm.found)
        assert np.array_equal(r_sa.values[r_sa.found], r_lsm.values[r_lsm.found])

        k1 = rng.integers(0, 90000, 20, dtype=np.uint32)
        k2 = (k1 + 5000).astype(np.uint32)
        assert np.array_equal(sa.count(k1, k2), lsm.count(k1, k2))
        rr_sa = sa.range_query(k1, k2)
        rr_lsm = lsm.range_query(k1, k2)
        assert np.array_equal(rr_sa.offsets, rr_lsm.offsets)
        assert np.array_equal(rr_sa.keys, rr_lsm.keys)
