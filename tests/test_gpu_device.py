"""Unit tests for the simulated Device (repro.gpu.device)."""

import numpy as np

from repro.gpu.device import Device, get_default_device, set_default_device
from repro.gpu.spec import K40C_SPEC


class TestDeviceBasics:
    def test_record_kernel_advances_clock(self, device):
        before = device.simulated_seconds
        device.record_kernel("k", coalesced_read_bytes=1 << 20)
        assert device.simulated_seconds > before

    def test_record_kernel_returns_stats(self, device):
        stats = device.record_kernel("k", coalesced_read_bytes=10, work_items=3)
        assert stats.name == "k"
        assert stats.coalesced_read_bytes == 10
        assert stats.work_items == 3

    def test_elapsed_since_snapshot(self, device):
        snap = device.snapshot()
        device.record_kernel("k", coalesced_read_bytes=1 << 20)
        elapsed = device.elapsed_since(snap)
        assert elapsed > 0
        # A later snapshot measures only what comes after it.
        snap2 = device.snapshot()
        assert device.elapsed_since(snap2) == 0

    def test_memory_info_reflects_allocations(self, device):
        info_before = device.memory_info()
        arr = device.alloc(1024, dtype=np.uint8)
        info_after = device.memory_info()
        assert info_after["used_bytes"] == info_before["used_bytes"] + 1024
        arr.free()

    def test_reset_counters_clears_clock_but_keeps_memory(self, device):
        arr = device.alloc(128)
        device.record_kernel("k", coalesced_read_bytes=1000)
        device.reset_counters()
        assert device.simulated_seconds == 0.0
        assert len(device.counter) == 0
        assert device.pool.used_bytes >= 128  # allocation survives
        arr.free()

    def test_grid_for_uses_spec(self, device):
        grid = device.grid_for(1 << 20)
        assert grid.num_items == 1 << 20
        assert grid.num_blocks >= 1

    def test_rng_reproducible(self):
        d1 = Device(K40C_SPEC, seed=7)
        d2 = Device(K40C_SPEC, seed=7)
        assert np.array_equal(d1.rng.integers(0, 100, 10), d2.rng.integers(0, 100, 10))


class TestDefaultDevice:
    def test_default_device_created_lazily(self):
        set_default_device(None)
        dev = get_default_device()
        assert isinstance(dev, Device)
        assert get_default_device() is dev

    def test_set_default_device(self):
        custom = Device(K40C_SPEC)
        set_default_device(custom)
        assert get_default_device() is custom
        set_default_device(None)
