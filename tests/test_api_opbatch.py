"""OpBatch construction, validation, planning and result layout."""

import numpy as np
import pytest

from repro.api import (
    Consistency,
    Op,
    OpBatch,
    OpCode,
    ResultStatus,
    plan_batch,
)


class TestOpBatchBuilders:
    def test_from_ops_round_trips(self):
        ops = [
            Op.insert(5, 50),
            Op.delete(6),
            Op.lookup(7),
            Op.count(1, 9),
            Op.range_query(2, 8),
        ]
        batch = OpBatch.from_ops(ops)
        assert batch.size == 5
        assert [batch.op(i) for i in range(5)] == ops
        assert list(batch) == ops

    def test_columnar_builders_set_the_right_columns(self):
        ins = OpBatch.inserts(np.array([1, 2]), np.array([10, 20]))
        assert list(ins.opcodes) == [OpCode.INSERT] * 2
        assert list(ins.values) == [10, 20]
        dels = OpBatch.deletes(np.array([3]))
        assert list(dels.opcodes) == [OpCode.DELETE]
        cnt = OpBatch.counts(np.array([0]), np.array([9]))
        assert list(cnt.range_ends) == [9]
        rng = OpBatch.ranges(np.array([4]), np.array([8]))
        assert list(rng.opcodes) == [OpCode.RANGE]

    def test_key_only_inserts_default_to_zero_values(self):
        batch = OpBatch.inserts(np.array([1, 2, 3]))
        assert list(batch.values) == [0, 0, 0]

    def test_concat_preserves_arrival_order(self):
        batch = OpBatch.concat(
            [
                OpBatch.inserts(np.array([1]), np.array([10])),
                OpBatch.lookups(np.array([2])),
                OpBatch.deletes(np.array([3])),
            ]
        )
        assert [OpCode(c) for c in batch.opcodes] == [
            OpCode.INSERT,
            OpCode.LOOKUP,
            OpCode.DELETE,
        ]
        assert list(batch.keys) == [1, 2, 3]

    def test_concat_of_nothing_is_empty(self):
        assert OpBatch.concat([]).size == 0
        assert OpBatch.empty().size == 0

    def test_mix_introspection(self):
        batch = OpBatch.concat(
            [
                OpBatch.inserts(np.arange(3), np.arange(3)),
                OpBatch.lookups(np.arange(2)),
            ]
        )
        assert batch.num_updates == 3
        assert batch.num_queries == 2
        mix = batch.counts_by_opcode()
        assert mix[OpCode.INSERT] == 3 and mix[OpCode.LOOKUP] == 2
        assert mix[OpCode.RANGE] == 0


class TestOpBatchValidation:
    def test_range_requires_ordered_bounds(self):
        with pytest.raises(ValueError, match="key <= range_end"):
            OpBatch.counts(np.array([9]), np.array([1]))
        with pytest.raises(ValueError, match="key <= range_end"):
            OpBatch.from_ops([Op.range_query(9, 1)])

    def test_range_op_requires_range_end(self):
        with pytest.raises(ValueError, match="requires range_end"):
            OpBatch.from_ops([Op(OpCode.COUNT, 3)])

    def test_rejects_negative_and_non_integer_keys(self):
        with pytest.raises(ValueError, match="non-negative"):
            OpBatch.lookups(np.array([-1]))
        with pytest.raises(ValueError, match="integer"):
            OpBatch.lookups(np.array([1.5]))

    def test_rejects_misaligned_columns(self):
        with pytest.raises(ValueError, match="align"):
            OpBatch(
                np.zeros(2, dtype=np.uint8),
                np.zeros(3, dtype=np.uint64),
                np.zeros(2, dtype=np.uint64),
                np.zeros(2, dtype=np.uint64),
            )

    def test_rejects_non_integer_opcode_columns(self):
        with pytest.raises(ValueError, match="integer"):
            OpBatch(
                np.array([2.9]),  # would silently truncate to LOOKUP
                np.zeros(1, dtype=np.uint64),
                np.zeros(1, dtype=np.uint64),
                np.zeros(1, dtype=np.uint64),
            )

    def test_rejects_unknown_opcodes(self):
        with pytest.raises(ValueError, match="opcodes"):
            OpBatch(
                np.array([7], dtype=np.uint8),
                np.zeros(1, dtype=np.uint64),
                np.zeros(1, dtype=np.uint64),
                np.zeros(1, dtype=np.uint64),
            )


class TestPlanner:
    def _mixed(self):
        return OpBatch.from_ops(
            [
                Op.lookup(1),
                Op.insert(2, 20),
                Op.count(0, 9),
                Op.delete(3),
                Op.lookup(4),
                Op.range_query(0, 9),
            ]
        )

    def test_snapshot_plan_runs_queries_before_the_update_segment(self, device):
        plan = plan_batch(self._mixed(), Consistency.SNAPSHOT, device=device)
        kinds = [s.kind for s in plan.segments]
        assert kinds == ["lookup", "count", "range", "update"]
        lookup_seg = plan.segments[0]
        # Stable multisplit: arrival order preserved inside the segment.
        assert list(lookup_seg.indices) == [0, 4]
        assert list(plan.segments[-1].indices) == [1, 3]

    def test_strict_plan_follows_arrival_runs(self, device):
        plan = plan_batch(self._mixed(), Consistency.STRICT, device=device)
        kinds = [s.kind for s in plan.segments]
        # lookup(1) | insert | count | delete | lookup, range
        assert kinds == ["lookup", "update", "count", "update", "lookup", "range"]
        assert list(plan.segments[1].indices) == [1]
        assert list(plan.segments[4].indices) == [4]

    def test_empty_batch_plans_to_no_segments(self, device):
        plan = plan_batch(OpBatch.empty(), Consistency.SNAPSHOT, device=device)
        assert plan.num_segments == 0

    def _reference_segments(self, batch, consistency):
        """Scalar per-op reference for the vectorized routing: walk the
        batch once in arrival order and group positions the way the plan
        contract specifies."""
        kind_of = {0: "update", 1: "update", 2: "lookup", 3: "count", 4: "range"}
        if consistency is Consistency.SNAPSHOT:
            groups = {"lookup": [], "count": [], "range": [], "update": []}
            for i, code in enumerate(batch.opcodes):
                groups[kind_of[int(code)]].append(i)
            return [
                (kind, groups[kind])
                for kind in ("lookup", "count", "range", "update")
                if groups[kind]
            ]
        segments = []
        run = None  # (is_update, {kind: positions})
        for i, code in enumerate(batch.opcodes):
            kind = kind_of[int(code)]
            is_update = kind == "update"
            if run is None or run[0] != is_update:
                if run is not None:
                    segments.extend(
                        (k, idx)
                        for k in ("update", "lookup", "count", "range")
                        for kk, idx in [(k, run[1].get(k))]
                        if idx
                    )
                run = (is_update, {})
            run[1].setdefault(kind, []).append(i)
        if run is not None:
            segments.extend(
                (k, idx)
                for k in ("update", "lookup", "count", "range")
                for kk, idx in [(k, run[1].get(k))]
                if idx
            )
        return segments

    @pytest.mark.parametrize("consistency", [Consistency.SNAPSHOT, Consistency.STRICT])
    def test_batched_routing_matches_scalar_reference(self, device, consistency):
        """Regression for the vectorized group routing (one np.split /
        one segmented multisplit): segment kinds, order, and per-segment
        arrival-ordered indices are unchanged on a large mixed batch."""
        rng = np.random.default_rng(0xF00D)
        n = 512
        opcodes = rng.integers(0, 5, n).astype(np.uint8)
        keys = rng.integers(0, 1 << 20, n, dtype=np.uint64)
        values = rng.integers(0, 1 << 20, n, dtype=np.uint64)
        ends = keys + rng.integers(0, 16, n, dtype=np.uint64)
        batch = OpBatch(opcodes, keys, values, ends)
        plan = plan_batch(batch, consistency, device=device)
        got = [(s.kind, list(map(int, s.indices))) for s in plan.segments]
        assert got == self._reference_segments(batch, consistency)


class TestResultBatch:
    def test_result_index_bounds(self, device):
        from repro import KVStore

        store = KVStore(batch_size=8, device=device)
        res = store.apply(OpBatch.inserts(np.array([1]), np.array([10])))
        assert res.ok
        res.raise_for_status()
        with pytest.raises(IndexError):
            res.result(1)

    def test_statuses_and_payloads_in_request_order(self, device):
        from repro import KVStore

        store = KVStore(batch_size=8, device=device)
        store.apply(OpBatch.inserts(np.arange(6), np.arange(6) * 10))
        res = store.apply(
            OpBatch.from_ops(
                [
                    Op.range_query(0, 2),
                    Op.lookup(5),
                    Op.range_query(4, 5),
                    Op.count(0, 5),
                ]
            )
        )
        assert res.ok and all(r.status is ResultStatus.OK for r in res)
        first = res.result(0)
        assert list(first.keys) == [0, 1, 2] and list(first.values) == [0, 10, 20]
        second = res.result(2)
        assert list(second.keys) == [4, 5] and list(second.values) == [40, 50]
        assert res.result(1).found and res.result(1).value == 50
        assert res.result(3).count == 6
        # Flat layout: widths of range rows only, in request order.
        assert list(np.diff(res.range_offsets)) == [3, 0, 2, 0]
