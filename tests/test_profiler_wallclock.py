"""Wall-clock profiler regions and the bounded latency histogram."""

import numpy as np
import pytest

from repro.gpu.device import Device
from repro.gpu.profiler import LatencyHistogram, percentile_summary


class TestWallClockRegions:
    def test_region_records_wall_seconds_separate_from_simulated(self):
        device = Device()
        with device.timed_region("op", items=10):
            device.record_kernel("k", coalesced_read_bytes=1 << 20, work_items=10)
        record = device.profiler.last
        assert record.wall_seconds > 0.0
        # Two independent axes: the simulated cost comes from the model,
        # the wall clock from perf_counter; neither feeds the other.
        assert record.wall_seconds != record.seconds
        assert record.wall_rate_per_s == pytest.approx(
            10 / record.wall_seconds
        )

    def test_total_wall_seconds_sums_by_prefix(self):
        device = Device()
        for name in ("a.x", "a.y", "b.z"):
            with device.timed_region(name):
                pass
        profiler = device.profiler
        total_a = profiler.total_wall_seconds("a.")
        assert total_a > 0.0
        assert profiler.total_wall_seconds() == pytest.approx(
            total_a + profiler.total_wall_seconds("b."), rel=1e-9
        )

    def test_summary_rows_include_wall_ms(self):
        device = Device()
        with device.timed_region("op"):
            pass
        row = device.profiler.summary_rows()[-1]
        assert "wall_ms" in row and row["wall_ms"] >= 0.0


class TestLatencyHistogram:
    def test_empty_summary_is_nan(self):
        hist = LatencyHistogram()
        summary = hist.summary()
        assert all(np.isnan(v) for v in summary.values())
        assert len(hist) == 0

    def test_mean_and_count_are_exact(self):
        hist = LatencyHistogram()
        samples = [0.001, 0.002, 0.004, 0.1]
        for s in samples:
            hist.record(s)
        assert hist.count == 4
        assert hist.mean == pytest.approx(np.mean(samples))

    def test_weighted_record_equals_repeated_records(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record_weighted(0.003, 100)
        for _ in range(100):
            b.record(0.003)
        assert a.count == b.count == 100
        assert a.percentile(50) == b.percentile(50)
        assert a.mean == pytest.approx(b.mean)

    def test_percentiles_within_bucket_tolerance(self):
        """Approximation contract: each percentile lands within one
        geometric bucket (rel. error 2**(1/16)-1 ≈ 4.5%) of numpy's."""
        rng = np.random.default_rng(11)
        samples = rng.lognormal(mean=-7.0, sigma=1.0, size=5000)
        hist = LatencyHistogram()
        for s in samples:
            hist.record(float(s))
        tolerance = 2 ** (1 / 16) - 1 + 1e-9
        reference = percentile_summary(samples)
        for p in (50, 95, 99):
            exact = reference[f"p{p}"]
            approx = hist.percentile(p)
            assert abs(approx - exact) / exact <= 2 * tolerance

    def test_single_sample_is_sharp(self):
        hist = LatencyHistogram()
        hist.record(0.0123)
        # Clamped to observed min/max: one sample answers exactly.
        assert hist.percentile(50) == pytest.approx(0.0123)
        assert hist.percentile(99) == pytest.approx(0.0123)

    def test_memory_is_bounded_and_recording_is_o1(self):
        hist = LatencyHistogram()
        bins_before = hist._counts.size
        for i in range(100_000):
            hist.record_weighted(1e-5 * (1 + (i % 7)), 3)
        assert hist._counts.size == bins_before
        assert hist.count == 300_000

    def test_out_of_range_values_clamp_to_edge_bins(self):
        hist = LatencyHistogram(min_latency=1e-6, max_latency=1.0)
        hist.record(1e-12)  # below range
        hist.record(50.0)  # above range
        assert hist.count == 2
        assert hist.percentile(1) == pytest.approx(1e-12)  # min clamp
        assert hist.percentile(99) == pytest.approx(50.0)  # max clamp

    def test_monotone_percentiles(self):
        rng = np.random.default_rng(5)
        hist = LatencyHistogram()
        for s in rng.exponential(0.01, size=1000):
            hist.record(float(s))
        values = [hist.percentile(p) for p in (10, 50, 90, 99)]
        assert values == sorted(values)

    def test_clear_resets_everything(self):
        hist = LatencyHistogram()
        hist.record(0.5)
        hist.clear()
        assert hist.count == 0
        assert np.isnan(hist.percentile(50))

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_latency=1.0, max_latency=0.5)
        with pytest.raises(ValueError):
            LatencyHistogram(bins_per_octave=0)


class TestEngineStatsStayBounded:
    def test_stats_cost_does_not_grow_with_samples(self):
        """The fix for per-call percentile recomputation: stats() walks a
        fixed-size histogram, so its cost is flat in the number of ops
        the engine has served."""
        import time

        from repro.core.lsm import GPULSM
        from repro.serve import Engine, TickTrigger

        engine = Engine(GPULSM(batch_size=16))
        # Record far more op latencies than the old deque bound would
        # have kept, through the tick-recording path.
        for latency_ms in range(5):
            engine._record_tick(
                size=1 << 20,
                trigger=TickTrigger.SIZE,
                op_latencies=[(0.001 * (latency_ms + 1), 1 << 20)],
                tick_latency=0.01,
                sim_seconds=0.0,
                plan_seconds=0.0,
                t_done=time.monotonic(),
            )
        stats = engine.stats()
        assert stats.ops_completed == 5 << 20
        assert stats.op_latency["p50"] <= stats.op_latency["p99"]
        assert stats.op_latency["mean"] == pytest.approx(0.003)
