"""Hypothesis oracle: maintenance is answer-invariant.

Random insert / delete / ``compact_levels(k)`` / ``cleanup`` traces drive
the same dictionary with query filters off and on (fences+Bloom) plus a
plain Python dict oracle, on both the single-device :class:`GPULSM` and a
four-shard :class:`ShardedLSM`.  After every step:

* ``lookup`` / ``count`` / ``range_query`` agree with the oracle in every
  configuration — maintenance may move, drop and pad elements, never
  change an answer;
* every occupied level carries query filters exactly when the
  configuration enables them (rebuilt levels get fresh filters);
* the multiple-of-``b`` shape invariants of Section III-B hold after
  every partial compaction (occupied levels are the set bits of the batch
  counter; each level is completely full).

This is the end-to-end guarantee of the maintenance subsystem: cleanup
and incremental compaction are structural operations only.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import LSMConfig
from repro.core.invariants import check_lsm_invariants
from repro.core.lsm import GPULSM
from repro.gpu.device import Device
from repro.gpu.spec import K40C_SPEC
from repro.scale import ShardedLSM

KEY_SPACE = 96
BATCH = 16

#: Filters off and the full acceleration stack: maintenance must rebuild
#: the filters of every level it refills.
FILTER_MODES = (
    ("off", {}),
    ("fences+bloom", dict(enable_fences=True, bloom_bits_per_key=10)),
)

key_strategy = st.integers(min_value=0, max_value=KEY_SPACE - 1)
value_strategy = st.integers(min_value=0, max_value=1000)
pair_strategy = st.tuples(key_strategy, value_strategy)
#: Maintenance action after a step: None, full cleanup, or an incremental
#: compaction of the k smallest occupied levels.
action_strategy = st.one_of(
    st.none(),
    st.just("cleanup"),
    st.integers(min_value=1, max_value=4),
)
step_strategy = st.tuples(
    st.lists(pair_strategy, max_size=6),   # insertions
    st.lists(key_strategy, max_size=6),    # deletions (tombstones)
    action_strategy,
).filter(lambda t: len(t[0]) + len(t[1]) >= 1)
trace_strategy = st.lists(step_strategy, min_size=1, max_size=6)


def _make_backends(kind):
    if kind == "gpulsm":
        return {
            name: GPULSM(
                config=LSMConfig(
                    batch_size=BATCH, validate_invariants=True, **kwargs
                ),
                device=Device(K40C_SPEC, seed=23),
            )
            for name, kwargs in FILTER_MODES
        }
    return {
        name: ShardedLSM(
            num_shards=4,
            batch_size=BATCH,
            key_domain=KEY_SPACE,
            seed=23,
            validate_invariants=True,
            **kwargs,
        )
        for name, kwargs in FILTER_MODES
    }


def _oracle_apply(oracle, inserts, deletes):
    """The paper's batch semantics on a python dict: a delete anywhere in
    the batch dominates its key; among insertions the first wins."""
    deleted = set(deletes)
    first_insert = {}
    for k, v in inserts:
        first_insert.setdefault(k, v)
    for k in deleted:
        oracle.pop(k, None)
    for k, v in first_insert.items():
        if k not in deleted:
            oracle[k] = v


def _each_lsm(backend):
    yield from getattr(backend, "shards", [backend])


def _check_structure(backend, name, filters_on):
    """Level-shape and filter-attachment invariants after maintenance."""
    for lsm in _each_lsm(backend):
        check_lsm_invariants(lsm)
        assert lsm.num_elements % lsm.batch_size == 0, name
        for level in lsm.occupied_levels():
            assert (level.filters is not None) == filters_on, (
                name,
                level.index,
            )


def _check_agreement(backends, oracle, queries, k1, k2):
    expected_found = [k in oracle for k in queries.tolist()]
    expected_counts = [
        sum(1 for k in oracle if lo <= k <= hi)
        for lo, hi in zip(k1.tolist(), k2.tolist())
    ]
    for name, backend in backends.items():
        res = backend.lookup(queries)
        assert res.found.tolist() == expected_found, name
        for i, k in enumerate(queries.tolist()):
            if k in oracle:
                assert int(res.values[i]) == oracle[k], (name, k)
        counts = backend.count(k1, k2)
        assert counts.tolist() == expected_counts, name
        rr = backend.range_query(k1, k2)
        for i, (lo, hi) in enumerate(zip(k1.tolist(), k2.tolist())):
            expected_pairs = sorted(
                (k, v) for k, v in oracle.items() if lo <= k <= hi
            )
            keys_i, vals_i = rr.query_slice(i)
            got = [(int(k), int(v)) for k, v in zip(keys_i, vals_i)]
            assert got == expected_pairs, (name, lo, hi)


def run_trace(kind, trace):
    backends = _make_backends(kind)
    oracle = {}
    all_keys = np.arange(KEY_SPACE + 8, dtype=np.uint32)  # misses included
    k1 = np.array([0, 30, 7, 90], dtype=np.uint32)
    k2 = np.array([KEY_SPACE - 1, 60, 7, KEY_SPACE + 4], dtype=np.uint32)

    for inserts, deletes, action in trace:
        ins_keys = np.array([k for k, _ in inserts], dtype=np.uint32)
        ins_vals = np.array([v for _, v in inserts], dtype=np.uint32)
        del_keys = np.array(deletes, dtype=np.uint32)
        for backend in backends.values():
            backend.update(
                insert_keys=ins_keys if ins_keys.size else None,
                insert_values=ins_vals if ins_keys.size else None,
                delete_keys=del_keys if del_keys.size else None,
            )
        _oracle_apply(oracle, inserts, deletes)
        if action == "cleanup":
            for backend in backends.values():
                backend.cleanup()
        elif action is not None:
            for backend in backends.values():
                backend.compact_levels(action)
        for (name, kwargs), backend in zip(FILTER_MODES, backends.values()):
            _check_structure(backend, name, filters_on=bool(kwargs))
        _check_agreement(backends, oracle, all_keys, k1, k2)


class TestMaintenanceOracle:
    @settings(max_examples=30, deadline=None)
    @given(trace=trace_strategy)
    def test_gpulsm_maintenance_is_answer_invariant(self, trace):
        run_trace("gpulsm", trace)

    @settings(max_examples=10, deadline=None)
    @given(trace=trace_strategy)
    def test_sharded4_maintenance_is_answer_invariant(self, trace):
        run_trace("sharded", trace)

    @pytest.mark.parametrize("kind", ["gpulsm", "sharded"])
    def test_tombstone_shadowing_survives_partial_compaction(self, kind):
        """Deterministic worst case: a compacted prefix tombstone must keep
        shadowing a regular copy in an older, untouched level."""
        trace = [
            ([(k, k * 2) for k in range(12)], [], None),
            ([], list(range(0, 12, 2)), 1),        # tombstones, compact k=1
            ([(1, 99), (0, 77)], [3], 2),           # reinsert, compact k=2
            ([(5, 5)], [1], "cleanup"),             # full cleanup at the end
        ]
        run_trace(kind, trace)

    @pytest.mark.parametrize("kind", ["gpulsm", "sharded"])
    def test_compaction_after_cleanup_padding(self, kind):
        """Partial compaction of a structure whose largest level carries
        cleanup placebos must leave them (and every answer) intact."""
        trace = [
            ([(k, k) for k in range(11)], [], "cleanup"),   # padded rebuild
            ([(k, k + 1) for k in range(6)], [], 1),
            ([], [2, 4], 2),
        ]
        run_trace(kind, trace)
