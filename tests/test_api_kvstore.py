"""KVStore mixed-operation semantics against a pure-python oracle.

The oracle executes the same :class:`OpBatch` on a plain Python dict under
both consistency knobs: *snapshot* (the tick's queries answer from the
pre-tick state; the tick's updates collapse to the paper's one-op-per-key
canonical batch — a deletion dominates, the first insertion wins) and
*strict* (each operation observes every update before it in arrival
order).  Every backend that supports the operations must agree exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    Consistency,
    KVStore,
    Op,
    OpBatch,
    OpCode,
    ResultStatus,
    SnapshotViolationError,
)
from repro.baselines.cuckoo_hash import CuckooHashTable
from repro.baselines.sorted_array import GPUSortedArray
from repro.core.config import LSMConfig
from repro.core.lsm import GPULSM
from repro.gpu.device import Device
from repro.gpu.spec import K40C_SPEC
from repro.scale.sharded import ShardedLSM

KEY_SPACE = 48  # small on purpose: maximises duplicate/delete interactions


# ---------------------------------------------------------------------- #
# Pure-python reference executor
# ---------------------------------------------------------------------- #
def _answer(op, state):
    if op.code is OpCode.LOOKUP:
        return ("lookup", state.get(op.key))
    if op.code is OpCode.COUNT:
        return ("count", sum(1 for k in state if op.key <= k <= op.range_end))
    return (
        "range",
        sorted((k, v) for k, v in state.items() if op.key <= k <= op.range_end),
    )


def reference_apply(state, batch, consistency):
    """Expected per-op answers; mutates ``state`` like the tick would."""
    ops = list(batch)
    expected = [None] * len(ops)
    if consistency is Consistency.STRICT:
        for i, op in enumerate(ops):
            if op.code is OpCode.INSERT:
                state[op.key] = op.value
            elif op.code is OpCode.DELETE:
                state.pop(op.key, None)
            else:
                expected[i] = _answer(op, state)
        return expected

    snapshot = dict(state)
    for i, op in enumerate(ops):
        if op.code.is_query:
            expected[i] = _answer(op, snapshot)
    deleted = {op.key for op in ops if op.code is OpCode.DELETE}
    first_insert = {}
    for op in ops:
        if op.code is OpCode.INSERT and op.key not in first_insert:
            first_insert[op.key] = op.value
    for key in deleted:
        state.pop(key, None)
    for key, value in first_insert.items():
        if key not in deleted:
            state[key] = value
    return expected


def assert_matches(result, expected):
    for i, exp in enumerate(expected):
        res = result.result(i)
        assert res.ok, f"op {i} not ok: {res}"
        if exp is None:
            continue
        kind, want = exp
        if kind == "lookup":
            if want is None:
                assert not res.found, f"op {i}: unexpected hit"
            else:
                assert res.found and res.value == want, f"op {i}"
        elif kind == "count":
            assert res.count == want, f"op {i}"
        else:
            got = [(int(k), int(v)) for k, v in zip(res.keys, res.values)]
            assert got == want, f"op {i}"
            assert res.count == len(want)


BACKENDS = {
    "gpulsm": lambda: GPULSM(
        config=LSMConfig(batch_size=8), device=Device(K40C_SPEC, seed=0)
    ),
    "sharded1": lambda: ShardedLSM(
        num_shards=1, batch_size=16, key_domain=KEY_SPACE
    ),
    "sharded4": lambda: ShardedLSM(
        num_shards=4, batch_size=16, key_domain=KEY_SPACE
    ),
    "sorted_array": lambda: GPUSortedArray(device=Device(K40C_SPEC, seed=0)),
}

key_st = st.integers(min_value=0, max_value=KEY_SPACE - 1)
value_st = st.integers(min_value=0, max_value=10_000)
op_st = st.one_of(
    st.builds(Op.insert, key_st, value_st),
    st.builds(Op.delete, key_st),
    st.builds(Op.lookup, key_st),
    st.tuples(key_st, key_st).map(lambda t: Op.count(min(t), max(t))),
    st.tuples(key_st, key_st).map(lambda t: Op.range_query(min(t), max(t))),
)
ticks_st = st.lists(
    st.lists(op_st, min_size=0, max_size=24), min_size=1, max_size=3
)


class TestMixedBatchOracle:
    """Hypothesis oracle: random mixed ticks vs the python dict."""

    @pytest.mark.parametrize("backend_name", sorted(BACKENDS))
    @pytest.mark.parametrize(
        "consistency", [Consistency.SNAPSHOT, Consistency.STRICT]
    )
    @settings(max_examples=20, deadline=None)
    @given(ticks=ticks_st)
    def test_apply_matches_python_dict(self, backend_name, consistency, ticks):
        store = KVStore(backend=BACKENDS[backend_name](), consistency=consistency)
        state = {}
        for ops in ticks:
            batch = OpBatch.from_ops(ops)
            expected = reference_apply(state, batch, consistency)
            assert_matches(store.apply(batch), expected)
        # Post-trace state agrees too (via the legacy surface).
        queries = np.arange(KEY_SPACE, dtype=np.uint64)
        res = store.lookup(queries)
        for k in range(KEY_SPACE):
            if k in state:
                assert res.found[k] and int(res.values[k]) == state[k]
            else:
                assert not res.found[k]

    @pytest.mark.parametrize("backend_name", sorted(BACKENDS))
    def test_duplicate_heavy_mixed_tick(self, backend_name):
        """Rules 4 and 6 of Section III-A inside one snapshot tick."""
        store = KVStore(backend=BACKENDS[backend_name]())
        store.apply(OpBatch.inserts(np.array([7]), np.array([70])))
        tick = OpBatch.from_ops(
            [
                Op.insert(1, 11),   # first insertion of 1 wins ...
                Op.insert(1, 99),   # ... not this one (rule 4)
                Op.lookup(7),       # snapshot: pre-tick state
                Op.insert(2, 22),
                Op.delete(2),       # deletion dominates the tick (rule 6)
                Op.delete(7),
                Op.insert(7, 77),   # even when the insert arrives later
                Op.count(0, KEY_SPACE - 1),
            ]
        )
        res = store.apply(tick)
        assert res.result(2).found and res.result(2).value == 70
        assert res.result(7).count == 1  # only key 7 existed pre-tick
        after = store.lookup(np.array([1, 2, 7], dtype=np.uint64))
        assert list(after.found) == [True, False, False]
        assert int(after.values[0]) == 11

    @pytest.mark.parametrize("backend_name", sorted(BACKENDS))
    def test_strict_tick_follows_arrival_order(self, backend_name):
        store = KVStore(backend=BACKENDS[backend_name]())
        tick = OpBatch.from_ops(
            [
                Op.insert(4, 40),
                Op.lookup(4),        # sees the preceding insert
                Op.delete(4),
                Op.lookup(4),        # sees the preceding delete
                Op.insert(4, 44),    # resurrect: last write wins
                Op.lookup(4),
            ]
        )
        res = store.apply(tick, consistency=Consistency.STRICT)
        assert res.result(1).found and res.result(1).value == 40
        assert not res.result(3).found
        assert res.result(5).found and res.result(5).value == 44
        assert bool(store.lookup(np.array([4])).found[0])


class TestSnapshotReads:
    """Acceptance regression: reads within a tick never observe that
    tick's writes under SNAPSHOT — and do observe preceding writes under
    STRICT — for every query kind."""

    def _store(self):
        return KVStore(batch_size=8, device=Device(K40C_SPEC, seed=0))

    def test_snapshot_reads_do_not_observe_the_ticks_writes(self):
        store = self._store()
        store.apply(OpBatch.inserts(np.array([10]), np.array([1])))
        tick = OpBatch.from_ops(
            [
                Op.insert(20, 2),
                Op.lookup(20),            # not yet visible
                Op.delete(10),
                Op.lookup(10),            # still visible
                Op.count(0, 47),          # pre-tick population
                Op.range_query(0, 47),    # pre-tick pairs
            ]
        )
        res = store.apply(tick, consistency=Consistency.SNAPSHOT)
        assert not res.result(1).found
        assert res.result(3).found and res.result(3).value == 1
        assert res.result(4).count == 1
        assert list(res.result(5).keys) == [10]
        # After the tick both writes are visible.
        after = store.lookup(np.array([10, 20], dtype=np.uint64))
        assert list(after.found) == [False, True]

    def test_strict_reads_observe_preceding_writes_only(self):
        store = self._store()
        tick = OpBatch.from_ops(
            [
                Op.lookup(5),            # nothing yet
                Op.insert(5, 50),
                Op.count(0, 47),         # observes the insert
                Op.range_query(0, 47),
                Op.delete(5),
                Op.count(0, 47),         # observes the delete
            ]
        )
        res = store.apply(tick, consistency=Consistency.STRICT)
        assert not res.result(0).found
        assert res.result(2).count == 1
        assert list(res.result(3).keys) == [5]
        assert res.result(5).count == 0

    def test_store_level_default_knob_is_honoured(self):
        snap = KVStore(batch_size=8, device=Device(K40C_SPEC, seed=0))
        strict = KVStore(
            batch_size=8,
            device=Device(K40C_SPEC, seed=1),
            consistency=Consistency.STRICT,
        )
        tick = [Op.insert(1, 10), Op.lookup(1)]
        assert not snap.apply(OpBatch.from_ops(tick)).result(1).found
        assert strict.apply(OpBatch.from_ops(tick)).result(1).found

    def test_sharded_snapshot_reads_pin_per_shard_epochs(self):
        backend = ShardedLSM(num_shards=4, batch_size=16, key_domain=KEY_SPACE)
        store = KVStore(backend=backend)
        store.apply(
            OpBatch.inserts(
                np.arange(KEY_SPACE, dtype=np.uint64),
                np.arange(KEY_SPACE, dtype=np.uint64),
            )
        )
        epochs_before = backend.shard_epochs
        assert len(epochs_before) == 4 and sum(epochs_before) == backend.epoch
        tick = OpBatch.concat(
            [
                OpBatch.deletes(np.arange(KEY_SPACE, dtype=np.uint64)),
                OpBatch.counts(np.array([0]), np.array([KEY_SPACE - 1])),
            ]
        )
        res = store.apply(tick)
        assert res.result(KEY_SPACE).count == KEY_SPACE  # pre-tick state
        assert backend.shard_epochs > epochs_before  # the cascade ran after


class _SneakyBackend:
    """Delegates to a GPULSM but slips a cascade in during the *first*
    lookup — exactly the interleaving the epoch pin must catch (and a
    retried tick must then survive)."""

    def __init__(self, inner):
        self._inner = inner
        self._sneaked = False

    def supported_operations(self):
        return GPULSM.supported_operations()

    @property
    def epoch(self):
        return self._inner.epoch

    def insert(self, keys, values=None):
        self._inner.insert(keys, values)

    def delete(self, keys):
        self._inner.delete(keys)

    def update(self, **kwargs):
        self._inner.update(**kwargs)

    def lookup(self, query_keys):
        if query_keys.size and not self._sneaked:
            self._sneaked = True
            self._inner.insert(
                np.array([40], dtype=np.uint64), np.array([1], dtype=np.uint64)
            )
        return self._inner.lookup(query_keys)

    def count(self, k1, k2):
        return self._inner.count(k1, k2)

    def range_query(self, k1, k2):
        return self._inner.range_query(k1, k2)


class TestEpochPinning:
    def test_interleaved_cascade_raises_snapshot_violation(self):
        inner = GPULSM(config=LSMConfig(batch_size=8), device=Device(K40C_SPEC, seed=0))
        store = KVStore(backend=_SneakyBackend(inner))
        with pytest.raises(SnapshotViolationError, match="level set changed"):
            store.apply(OpBatch.from_ops([Op.insert(1, 10), Op.lookup(2)]))

    def test_mutations_bump_the_epoch(self):
        lsm = GPULSM(config=LSMConfig(batch_size=8), device=Device(K40C_SPEC, seed=0))
        assert lsm.epoch == 0
        lsm.insert(np.arange(8, dtype=np.uint32), np.arange(8, dtype=np.uint32))
        assert lsm.epoch == 1
        lsm.lookup(np.array([1], dtype=np.uint32))
        lsm.count(np.array([0]), np.array([7]))
        assert lsm.epoch == 1  # queries never move it
        lsm.cleanup()
        assert lsm.epoch == 2


class TestUnsupportedSegments:
    def test_cuckoo_ordered_queries_fail_per_op_not_per_batch(self):
        table = CuckooHashTable(device=Device(K40C_SPEC, seed=0))
        store = KVStore(backend=table)
        store.bulk_build(
            np.array([1, 2], dtype=np.uint64), np.array([10, 20], dtype=np.uint64)
        )
        tick = OpBatch.from_ops(
            [
                Op.lookup(1),
                Op.count(0, 5),
                Op.insert(3, 30),
                Op.range_query(0, 5),
                Op.lookup(2),
            ]
        )
        res = store.apply(tick)
        assert not res.ok
        assert res.result(0).found and res.result(0).value == 10
        assert res.result(4).found and res.result(4).value == 20
        assert res.result(2).ok  # the insert still applied ...
        assert bool(store.lookup(np.array([3], dtype=np.uint64)).found[0])
        for bad in (1, 3):
            r = res.result(bad)
            assert r.status is ResultStatus.UNSUPPORTED
            assert r.error is not None and "support" in str(r.error)
        with pytest.raises(Exception, match="COUNT"):
            res.raise_for_status()

    def test_supported_operations_passthrough(self):
        store = KVStore(backend=CuckooHashTable(device=Device(K40C_SPEC, seed=0)))
        ops = store.supported_operations()
        assert "lookup" in ops and "count" not in ops
        lsm_store = KVStore(batch_size=8, device=Device(K40C_SPEC, seed=0))
        assert "range_query" in lsm_store.supported_operations()


class TestSessions:
    def test_tickets_resolve_after_commit(self):
        store = KVStore(batch_size=8, device=Device(K40C_SPEC, seed=0))
        session = store.session()
        t_ins = session.insert(5, 55)
        t_look = session.lookup(5)
        with pytest.raises(RuntimeError, match="not committed"):
            t_look.result()
        assert session.num_pending == 2
        result = session.commit()
        assert session.num_pending == 0 and session.ticks_committed == 1
        assert len(result) == 2
        assert t_ins.result().ok
        assert not t_look.result().found  # snapshot: pre-tick state
        # Tickets from earlier ticks keep resolving after later commits.
        t_look2 = session.lookup(5)
        session.commit()
        assert t_look2.result().found and t_look2.result().value == 55
        assert not t_look.result().found
        assert store.ticks == 2

    def test_failed_commit_keeps_ops_pending_and_tickets_valid(self):
        inner = GPULSM(config=LSMConfig(batch_size=8), device=Device(K40C_SPEC, seed=0))
        store = KVStore(backend=_SneakyBackend(inner))
        session = store.session()
        ticket = session.insert(1, 111)
        session.lookup(2)  # triggers the sneaky mid-read cascade
        with pytest.raises(SnapshotViolationError):
            session.commit()
        # Nothing was recorded, the ops stay pending, the ticket unresolved.
        assert session.num_pending == 2 and session.ticks_committed == 0
        assert not ticket.committed
        # A retried commit resolves the original ticket against its own op.
        result = session.commit(consistency=Consistency.STRICT)
        assert len(result) == 2
        assert ticket.result().op.key == 1 and ticket.result().ok

    def test_empty_commit_is_a_pure_no_op(self):
        """Zero pending ops: no planner tick, no epoch bump, empty result."""
        store = KVStore(batch_size=8, device=Device(K40C_SPEC, seed=0))
        store.apply(OpBatch.inserts(np.array([1]), np.array([10])))
        session = store.session()
        ticks_before, epoch_before = store.ticks, store.epoch
        result = session.commit()
        assert len(result) == 0 and result.ok
        assert store.ticks == ticks_before  # no planner tick ran
        assert store.epoch == epoch_before  # no epoch bump
        assert session.ticks_committed == 0  # nothing recorded
        # Ticket arithmetic stays aligned: the next real commit resolves.
        ticket = session.lookup(1)
        session.commit()
        assert ticket.result().found and ticket.result().value == 10
        assert store.ticks == ticks_before + 1

    def test_extend_enqueues_a_columnar_batch(self):
        store = KVStore(batch_size=8, device=Device(K40C_SPEC, seed=0))
        session = store.session()
        tickets = session.extend(
            OpBatch.inserts(np.array([1, 2]), np.array([10, 20]))
        )
        t = session.count(0, 10)
        session.commit()
        assert [tk.result().ok for tk in tickets] == [True, True]
        assert t.result().count == 0  # pre-tick snapshot
        assert int(store.count(np.array([0]), np.array([10]))[0]) == 2


class TestFacadeBasics:
    def test_apply_rejects_non_batches(self):
        store = KVStore(batch_size=8, device=Device(K40C_SPEC, seed=0))
        with pytest.raises(TypeError, match="OpBatch"):
            store.apply([Op.lookup(1)])

    def test_empty_tick_is_a_no_op(self):
        store = KVStore(batch_size=8, device=Device(K40C_SPEC, seed=0))
        res = store.apply(OpBatch.empty())
        assert len(res) == 0 and res.ok
        assert store.ticks == 1

    def test_legacy_surface_still_works(self):
        store = KVStore(batch_size=8, device=Device(K40C_SPEC, seed=0))
        store.bulk_build(np.arange(8, dtype=np.uint32), np.arange(8, dtype=np.uint32))
        assert int(store.count(np.array([0]), np.array([7]))[0]) == 8
        store.delete(np.array([3], dtype=np.uint32))
        assert not store.lookup(np.array([3], dtype=np.uint32)).found[0]
        rr = store.range_query(np.array([0]), np.array([7]))
        assert rr.counts[0] == 7
        assert store.epoch == 2

    def test_key_only_backend_reports_no_values(self):
        store = KVStore(
            batch_size=8, device=Device(K40C_SPEC, seed=0), key_only=True
        )
        res = store.apply(
            OpBatch.concat(
                [
                    OpBatch.inserts(np.array([1, 2, 3])),
                    OpBatch.lookups(np.array([2, 9])),
                    OpBatch.ranges(np.array([0]), np.array([9])),
                ]
            ),
            consistency=Consistency.STRICT,
        )
        assert res.result(3).found and not res.result(4).found
        # No value column exists: the mixed path must not fabricate zeros
        # where the per-method surface reports None.
        assert res.values is None and res.range_values is None
        assert res.result(3).value is None
        rng = res.result(5)
        assert list(rng.keys) == [1, 2, 3] and rng.values is None

    def test_updates_larger_than_the_backend_batch_are_chunked(self):
        store = KVStore(batch_size=8, device=Device(K40C_SPEC, seed=0))
        n = 40  # five backend batches in one tick
        keys = np.arange(n, dtype=np.uint64)
        res = store.apply(OpBatch.inserts(keys, keys * 3))
        assert res.ok
        out = store.lookup(keys)
        assert out.found.all()
        assert np.array_equal(out.values, (keys * 3).astype(out.values.dtype))
