#!/usr/bin/env python3
"""Quickstart: the mixed-operation KVStore API in one small script.

Builds a store over the GPU LSM, serves mixed-operation ticks (inserts,
deletes, lookups, counts and range queries interleaved in single
``OpBatch`` requests), shows the two consistency knobs and the ticketing
session, lets the policy-driven maintenance subsystem clean up stale
elements on its own, and prints the simulated-GPU performance profile
(the per-operation throughput the cost model assigns on a Tesla K40c).

The per-method batch surface (``store.insert`` / ``lookup`` / ... and the
backends' own methods) remains fully supported; ``KVStore.apply`` is the
front door for mixed traffic.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Consistency,
    Device,
    GPULSM,
    K40C_SPEC,
    KVStore,
    LSMConfig,
    Op,
    OpBatch,
    StaleFractionPolicy,
)
from repro.bench.report import format_table


def main() -> None:
    # A dedicated simulated device so the profiler output covers only this
    # script's operations.  The backend carries a maintenance policy: the
    # engine under KVStore evaluates it after every tick and runs the
    # cleanup for us — no hand-rolled threshold loop.
    device = Device(K40C_SPEC, seed=7)
    batch_size = 4096
    backend = GPULSM(
        config=LSMConfig(
            batch_size=batch_size,
            maintenance_policy=StaleFractionPolicy(threshold=0.002),
        ),
        device=device,
    )
    store = KVStore(backend=backend)

    rng = np.random.default_rng(42)

    # ------------------------------------------------------------------ #
    # 1. Homogeneous ticks still exist: three insert batches.
    # ------------------------------------------------------------------ #
    all_keys = rng.choice(1 << 24, size=3 * batch_size, replace=False).astype(np.uint32)
    all_values = rng.integers(0, 1 << 30, size=3 * batch_size, dtype=np.uint32)
    for i in range(3):
        sl = slice(i * batch_size, (i + 1) * batch_size)
        store.apply(OpBatch.inserts(all_keys[sl], all_values[sl]))
    lsm = store.backend
    print(f"after 3 insert ticks: {lsm.num_elements} resident elements, "
          f"{lsm.num_occupied_levels} occupied level(s), epoch {store.epoch}")

    # ------------------------------------------------------------------ #
    # 2. One mixed tick: deletions, lookups, a count and a range query in
    #    a single request batch, answered in request order.
    # ------------------------------------------------------------------ #
    tick = OpBatch.concat([
        OpBatch.deletes(all_keys[:16]),                      # drop 16 keys ...
        OpBatch.lookups(all_keys[:16]),                      # ... and read them
        OpBatch.counts(np.array([0]), np.array([(1 << 24) - 1])),
        OpBatch.ranges(np.array([1 << 22]), np.array([1 << 23])),
    ])
    res = store.apply(tick)                                  # snapshot consistency
    found = sum(bool(res.result(16 + i).found) for i in range(16))
    print(f"mixed tick (snapshot): lookups still see all {found}/16 deleted keys "
          f"(reads observe the pre-tick state)")
    print(f"  count over the full domain: {res.result(32).count} live keys")
    print(f"  range [2^22, 2^23]: {res.result(33).count} pairs")
    still_there = store.lookup(all_keys[:16])
    print(f"  after the tick the deletions are visible: "
          f"{int(still_there.found.sum())}/16 found")

    # ------------------------------------------------------------------ #
    # 3. Strict arrival order: each op observes everything before it.
    # ------------------------------------------------------------------ #
    k = int(all_keys[100])
    res = store.apply(
        OpBatch.from_ops([
            Op.delete(k),
            Op.lookup(k),        # observes the delete
            Op.insert(k, 123456),
            Op.lookup(k),        # observes the re-insert
        ]),
        consistency=Consistency.STRICT,
    )
    print(f"strict tick: after delete found={bool(res.result(1).found)}, "
          f"after re-insert value={res.result(3).value}")

    # ------------------------------------------------------------------ #
    # 4. Sessions: enqueue single ops, commit one tick, resolve tickets.
    # ------------------------------------------------------------------ #
    session = store.session()
    t_insert = session.insert(999, 42)
    t_read = session.lookup(999)
    t_count = session.count(0, 2000)
    session.commit()
    print(f"session commit: insert ok={t_insert.result().ok}, "
          f"snapshot read found={t_read.result().found}, "
          f"count(0, 2000)={t_count.result().count}")

    # ------------------------------------------------------------------ #
    # 5. Policy-driven maintenance: the deletions of tick 2 pushed the
    #    stale fraction over the policy threshold, so the engine already
    #    ran a cleanup right after that tick — no explicit cleanup() call
    #    anywhere in this script.
    # ------------------------------------------------------------------ #
    maint = store.maintenance_stats()
    engine_stats = store.stats()
    print(f"policy-driven maintenance: {maint['runs']} run(s), triggers "
          f"{maint['triggers']}, {maint['reclaimed_elements']} elements "
          f"reclaimed, {maint['padding_added']} placebo padding")
    print(f"  engine-scheduled between ticks: {engine_stats.maintenance_runs} "
          f"run(s), {engine_stats.maintenance_seconds * 1e3:.3f} simulated ms")
    assert maint["runs"] >= 1, "the StaleFractionPolicy should have fired"

    # ------------------------------------------------------------------ #
    # 6. Simulated performance profile.
    # ------------------------------------------------------------------ #
    print()
    print(format_table(device.profiler.summary_rows(),
                       columns=["region", "items", "simulated_ms", "rate_m_per_s"],
                       title="Simulated K40c profile (per operation)"))


if __name__ == "__main__":
    main()
