#!/usr/bin/env python3
"""Quickstart: the GPU LSM's full API surface in one small script.

Builds a dictionary, applies batched insertions, deletions and a mixed
batch, runs every query type, performs a cleanup, and prints both the
functional results and the simulated-GPU performance profile (the per
operation throughput the cost model assigns on a Tesla K40c).

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import GPULSM, Device, K40C_SPEC
from repro.bench.report import format_table


def main() -> None:
    # A dedicated simulated device so the profiler output covers only this
    # script's operations.
    device = Device(K40C_SPEC, seed=7)
    batch_size = 4096
    lsm = GPULSM(batch_size=batch_size, device=device)

    rng = np.random.default_rng(42)

    # ------------------------------------------------------------------ #
    # 1. Batched insertions: three batches of random key/value pairs.
    # ------------------------------------------------------------------ #
    all_keys = rng.choice(1 << 24, size=3 * batch_size, replace=False).astype(np.uint32)
    all_values = rng.integers(0, 1 << 30, size=3 * batch_size, dtype=np.uint32)
    for i in range(3):
        sl = slice(i * batch_size, (i + 1) * batch_size)
        lsm.insert(all_keys[sl], all_values[sl])
    print(f"after 3 insert batches: {lsm.num_elements} resident elements, "
          f"{lsm.num_occupied_levels} occupied level(s)")

    # ------------------------------------------------------------------ #
    # 2. Lookups: half existing keys, half keys that were never inserted.
    # ------------------------------------------------------------------ #
    queries = np.concatenate([all_keys[:2048],
                              rng.integers(1 << 24, 1 << 25, 2048, dtype=np.uint32)])
    result = lsm.lookup(queries)
    print(f"lookup: {int(result.found.sum())} of {queries.size} queries found "
          f"(expected 2048)")

    # ------------------------------------------------------------------ #
    # 3. Deletion (tombstones) and a mixed update batch.
    # ------------------------------------------------------------------ #
    lsm.delete(all_keys[:batch_size])
    lsm.update(
        insert_keys=all_keys[:16],                       # resurrect 16 keys ...
        insert_values=np.full(16, 123456, dtype=np.uint32),
        delete_keys=all_keys[batch_size:batch_size + 16],  # ... and delete 16 more
    )
    check = lsm.lookup(all_keys[:32])
    print(f"after deletion + mixed batch: first 16 keys found again = "
          f"{bool(check.found[:16].all())}, next 16 still deleted = "
          f"{not check.found[16:32].any()}")

    # ------------------------------------------------------------------ #
    # 4. Count and range queries.
    # ------------------------------------------------------------------ #
    k1 = np.array([0, 1 << 22, 1 << 23], dtype=np.uint32)
    k2 = np.array([1 << 22, 1 << 23, (1 << 24) - 1], dtype=np.uint32)
    counts = lsm.count(k1, k2)
    ranges = lsm.range_query(k1, k2)
    for i in range(k1.size):
        keys_i, values_i = ranges.query_slice(i)
        assert keys_i.size == counts[i]
        print(f"range [{int(k1[i]):>9}, {int(k2[i]):>9}]: {int(counts[i]):>5} live keys")

    # ------------------------------------------------------------------ #
    # 5. Cleanup: drop tombstones, deleted and replaced elements.
    # ------------------------------------------------------------------ #
    stats = lsm.cleanup()
    print(f"cleanup: {stats['elements_before']} -> {stats['elements_after']} elements "
          f"({stats['removed']} removed, {stats['padding']} placebo padding)")

    # ------------------------------------------------------------------ #
    # 6. Simulated performance profile.
    # ------------------------------------------------------------------ #
    print()
    print(format_table(device.profiler.summary_rows(),
                       columns=["region", "items", "simulated_ms", "rate_m_per_s"],
                       title="Simulated K40c profile (per operation)"))


if __name__ == "__main__":
    main()
