#!/usr/bin/env python3
"""Moving-objects scenario: repeated range queries over objects that move.

The paper's introduction motivates dynamic GPU dictionaries with "processing
moving objects (e.g., real-time range queries to find k nearest neighbors
for all moving objects in a 2D plane)".  This example models that workload:

* objects live on a 2-D grid; each object's cell is linearised with a
  Z-order (Morton) curve so that spatially close objects have numerically
  close keys and a 2-D window decomposes into a handful of key ranges;
* every simulation tick a batch of objects moves: their old positions are
  deleted and their new positions inserted — exactly the mixed batches the
  GPU LSM is designed for;
* after every tick, range queries retrieve the objects inside a set of
  query windows (e.g. the neighbourhood of each camera / vehicle).

The same workload is run against the GPU sorted-array baseline, which must
merge the whole array on every tick; the closing table shows the simulated
time per tick for both structures — the dynamic-updates advantage the paper
quantifies in Table II and Figure 4b, in an application setting.

Run with:  python examples/moving_objects.py
"""

import numpy as np

from repro import GPULSM, GPUSortedArray, Device, K40C_SPEC
from repro.bench.report import format_table

GRID_BITS = 10            # 1024 x 1024 grid of cells
NUM_OBJECTS = 1 << 14     # 16K moving objects
MOVES_PER_TICK = 1 << 12  # objects moving per tick (one update batch)
NUM_TICKS = 6
NUM_QUERY_WINDOWS = 256
WINDOW_CELLS = 8          # query window edge length, in cells


def morton_encode(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Interleave the bits of two GRID_BITS-wide coordinates (Z-order key)."""
    key = np.zeros(x.shape, dtype=np.uint32)
    for bit in range(GRID_BITS):
        key |= ((x >> bit) & 1).astype(np.uint32) << (2 * bit)
        key |= ((y >> bit) & 1).astype(np.uint32) << (2 * bit + 1)
    return key


def window_range(x0: int, y0: int, edge: int) -> tuple:
    """Key range covering an ``edge``-aligned square window exactly.

    When the window's corner is aligned to ``edge`` (a power of two) and its
    side equals ``edge``, the Z-order curve visits all of its cells
    consecutively, so the whole window is one contiguous key range — the
    property that makes Morton keys a good fit for a range-query dictionary.
    """
    lo = morton_encode(np.array([x0], dtype=np.uint32),
                       np.array([y0], dtype=np.uint32))[0]
    hi = morton_encode(np.array([x0 + edge - 1], dtype=np.uint32),
                       np.array([y0 + edge - 1], dtype=np.uint32))[0]
    return int(lo), int(hi)


def main() -> None:
    rng = np.random.default_rng(2024)

    # Object state: positions and identifiers (the dictionary value).
    obj_x = rng.integers(0, 1 << GRID_BITS, NUM_OBJECTS, dtype=np.uint32)
    obj_y = rng.integers(0, 1 << GRID_BITS, NUM_OBJECTS, dtype=np.uint32)
    obj_id = np.arange(NUM_OBJECTS, dtype=np.uint32)

    # Two devices so the two structures' profiles stay separate.
    lsm_device = Device(K40C_SPEC, seed=1)
    sa_device = Device(K40C_SPEC, seed=1)
    lsm = GPULSM(batch_size=MOVES_PER_TICK, device=lsm_device)
    sa = GPUSortedArray(device=sa_device)

    # Initial build.  Both structures key objects by their Morton cell code;
    # the value is the object id.  (Cell collisions are fine for the demo:
    # the dictionary keeps one object per cell, mirroring an occupancy map.)
    keys0 = morton_encode(obj_x, obj_y)
    lsm.bulk_build(keys0, obj_id)
    sa.bulk_build(keys0, obj_id)

    rows = []
    for tick in range(1, NUM_TICKS + 1):
        movers = rng.choice(NUM_OBJECTS, MOVES_PER_TICK, replace=False)
        old_keys = morton_encode(obj_x[movers], obj_y[movers])
        # Random walk by one cell in each dimension (clamped to the grid).
        obj_x[movers] = np.clip(
            obj_x[movers].astype(np.int64) + rng.integers(-1, 2, movers.size),
            0, (1 << GRID_BITS) - 1).astype(np.uint32)
        obj_y[movers] = np.clip(
            obj_y[movers].astype(np.int64) + rng.integers(-1, 2, movers.size),
            0, (1 << GRID_BITS) - 1).astype(np.uint32)
        new_keys = morton_encode(obj_x[movers], obj_y[movers])

        # --- GPU LSM: one deletion batch (old cells), one insertion batch
        # (new cells).  Keeping them ordered delete-then-insert matches the
        # sorted array's update order, so an object that ends up in a cell
        # another mover just vacated is handled identically by both
        # structures.  (A single mixed batch would apply batch-semantics
        # rule 6 — insert+delete of the same key in one batch means deleted
        # — which is the right semantics for true tombstoning but not what
        # this occupancy-map workload wants.)
        before = lsm_device.snapshot()
        lsm.delete(old_keys)
        lsm.insert(new_keys, obj_id[movers])
        lsm_update_s = lsm_device.elapsed_since(before)

        # --- GPU SA: delete + re-insert, each a whole-array rebuild. ------ #
        before = sa_device.snapshot()
        sa.delete(old_keys)
        sa.insert(new_keys, obj_id[movers])
        sa_update_s = sa_device.elapsed_since(before)

        # --- Window queries on both structures. --------------------------- #
        window_x = rng.integers(0, (1 << GRID_BITS) // WINDOW_CELLS,
                                NUM_QUERY_WINDOWS) * WINDOW_CELLS
        window_y = rng.integers(0, (1 << GRID_BITS) // WINDOW_CELLS,
                                NUM_QUERY_WINDOWS) * WINDOW_CELLS
        k1_list, k2_list = [], []
        for wx, wy in zip(window_x, window_y):
            lo, hi = window_range(int(wx), int(wy), WINDOW_CELLS)
            k1_list.append(lo)
            k2_list.append(hi)
        k1 = np.asarray(k1_list, dtype=np.uint32)
        k2 = np.asarray(k2_list, dtype=np.uint32)

        before = lsm_device.snapshot()
        lsm_hits = int(lsm.count(k1, k2).sum())
        lsm_query_s = lsm_device.elapsed_since(before)

        before = sa_device.snapshot()
        sa_hits = int(sa.count(k1, k2).sum())
        sa_query_s = sa_device.elapsed_since(before)

        rows.append({
            "tick": tick,
            "objects_moved": MOVES_PER_TICK,
            "lsm_update_ms": lsm_update_s * 1e3,
            "sa_update_ms": sa_update_s * 1e3,
            "update_speedup": sa_update_s / lsm_update_s,
            "lsm_query_ms": lsm_query_s * 1e3,
            "sa_query_ms": sa_query_s * 1e3,
            "objects_in_windows": lsm_hits,
        })
        # Both structures must agree on what the queries see.
        assert lsm_hits == sa_hits, (lsm_hits, sa_hits)

    print(format_table(
        rows,
        title=(f"Moving objects: {NUM_OBJECTS} objects, {MOVES_PER_TICK} moves/tick, "
               f"{NUM_QUERY_WINDOWS} query windows/tick (simulated K40c times)"),
    ))
    print("The GPU LSM applies each tick's movement batch without touching the\n"
          "rest of the index, while the sorted array pays for a whole-array merge\n"
          "— the same trade-off as Table II / Figure 4b of the paper, with the\n"
          "expected small query-time penalty for the LSM's multiple levels.")


if __name__ == "__main__":
    main()
