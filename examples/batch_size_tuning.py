#!/usr/bin/env python3
"""Batch-size tuning study: the update/query trade-off of the GPU LSM.

The only tuning parameter the GPU LSM exposes is the batch size ``b``
(Section III-A: "The choice of b is application and platform dependent, and
can help trade off query and update performance").  This example sweeps
``b`` for a fixed dataset and prints, side by side:

* the mean insertion rate (larger b ⇒ fewer levels ⇒ faster updates *per
  element* but coarser update granularity),
* the mean lookup rate and count rate (larger b ⇒ fewer occupied levels ⇒
  faster queries),
* the number of occupied levels at full size,

so a user can pick the batch size that matches their update/query mix — the
practical counterpart of Tables II–IV.

Run with:  python examples/batch_size_tuning.py
"""


from repro.bench.runner import (
    ExperimentRunner,
    PAPER_QUERY_ELEMENTS,
    RateSummary,
    scaled_spec,
)
from repro.bench.report import format_table
from repro.bench.workloads import WorkloadConfig, make_workload
from repro.core.lsm import GPULSM

TOTAL_ELEMENTS = 1 << 16
BATCH_SIZES = [1 << s for s in range(9, 15)]
NUM_QUERIES = 1 << 12
RANGE_WIDTH = 32


def main() -> None:
    spec = scaled_spec(TOTAL_ELEMENTS, PAPER_QUERY_ELEMENTS)
    wl = make_workload(WorkloadConfig(num_elements=TOTAL_ELEMENTS, seed=123))
    rows = []

    for b in BATCH_SIZES:
        runner = ExperimentRunner(spec)
        lsm = GPULSM(batch_size=b, device=runner.device)

        # Insert all but the last batch so the final resident count is
        # (n/b - 1): an all-ones batch counter, i.e. every level occupied —
        # the worst case for queries and the configuration Tables III/IV
        # sweep.  (Inserting exactly n/b batches would leave a single full
        # level for every b and hide the query-side dependence on b.)
        insert_rates = RateSummary(f"insert_b={b}")
        batches = list(wl.batches(b))[:-1]
        for keys, values in batches:
            insert_rates.add(runner.measure(b, lambda: lsm.insert(keys, values)))

        existing = wl.existing_queries(NUM_QUERIES)
        missing = wl.missing_queries(NUM_QUERIES)
        lookup_rate = runner.measure(
            2 * NUM_QUERIES,
            lambda: (lsm.lookup(existing), lsm.lookup(missing)),
        )

        k1, k2 = wl.range_queries(NUM_QUERIES // 4, expected_width=RANGE_WIDTH)
        count_rate = runner.measure(k1.size, lambda: lsm.count(k1, k2))

        rows.append({
            "batch_size": b,
            "occupied_levels": lsm.num_occupied_levels,
            "insert_mean_rate": insert_rates.harmonic_mean,
            "insert_min_rate": insert_rates.min,
            "lookup_rate": lookup_rate,
            "count_rate": count_rate,
        })

    print(format_table(
        rows,
        title=(f"Batch-size tuning on {TOTAL_ELEMENTS} elements "
               f"(simulated K40c rates, M ops/s)"),
    ))
    print("Reading the table: moving down the rows (larger b) trades update\n"
          "granularity for both higher insertion rates and higher query rates;\n"
          "the sweet spot depends on how many elements arrive per update and\n"
          "how query-heavy the workload is — exactly the trade-off the paper\n"
          "describes when discussing the choice of b.")


if __name__ == "__main__":
    main()
