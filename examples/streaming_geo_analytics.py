#!/usr/bin/env python3
"""Streaming geo-analytics: real-time tweet-style ingest with region queries.

The paper's introduction cites "real-time tweet visualization from a
user-defined geographical region" as a motivating application.  This example
models that pipeline end to end on the GPU LSM:

* events (tweets) arrive in a continuous stream; each carries a location
  that is quantised to a geohash-style cell id (the dictionary key) and a
  payload id (the value);
* ingest happens in fixed-size batches — one GPU LSM update per arriving
  batch — while old events expire in deletion batches (a sliding window);
* dashboards repeatedly issue COUNT queries for map tiles (how many events
  per visible tile) and RANGE queries for the user-selected region (fetch
  the event ids to render);
* expired events accumulate as stale elements.  Instead of a hand-rolled
  threshold loop, the pipeline configures a
  :class:`~repro.core.maintenance.StaleFractionPolicy` on ``LSMConfig`` and
  polls ``run_due_maintenance()`` once per step — the maintenance
  subsystem decides when CLEANUP pays off (the Section V-D effect), and
  the per-policy trigger counters report what it did.

Every dashboard refresh is checked against a Python oracle of the sliding
window, so the output provably reports the same event-window answers
whether or not maintenance ran that step.

Run with:  python examples/streaming_geo_analytics.py
"""

import numpy as np

from repro import Device, GPULSM, K40C_SPEC, LSMConfig, StaleFractionPolicy
from repro.bench.report import format_table

CELL_BITS = 24              # 2^24 geo cells (about city-block resolution)
BATCH = 1 << 12             # events per ingest batch
WINDOW_BATCHES = 8          # sliding window length, in batches
NUM_INGEST_STEPS = 24
TILES_PER_DASHBOARD = 512   # COUNT queries per refresh
REGION_QUERIES = 64         # RANGE queries per refresh
CLEANUP_THRESHOLD = 0.35    # stale-fraction threshold of the policy


def make_event_batch(rng, step):
    """Synthesise one batch of events with a few geographic hot spots."""
    hot_spots = np.array([0x3A0000, 0x5B0000, 0x91C000], dtype=np.uint32)
    centre = hot_spots[rng.integers(0, hot_spots.size, BATCH)]
    jitter = rng.integers(0, 1 << 14, BATCH, dtype=np.uint32)
    cells = (centre + jitter) % (1 << CELL_BITS)
    event_ids = (step * BATCH + np.arange(BATCH)).astype(np.uint32) % (1 << 31)
    return cells.astype(np.uint32), event_ids


class WindowOracle:
    """Python mirror of the live event window (the LSM's batch semantics:
    a newer batch wins over older ones, the first insertion wins within a
    batch, a deletion batch removes its cells)."""

    def __init__(self):
        self.live = {}

    def expire(self, cells):
        for c in cells.tolist():
            self.live.pop(c, None)

    def ingest(self, cells, event_ids):
        batch_first = {}
        for c, e in zip(cells.tolist(), event_ids.tolist()):
            batch_first.setdefault(c, e)
        self.live.update(batch_first)

    def counts(self, lo, hi):
        """Live cells per inclusive [lo, hi] interval (vectorised)."""
        keys = np.fromiter(self.live.keys(), dtype=np.uint32,
                           count=len(self.live))
        keys.sort()
        return (
            np.searchsorted(keys, hi, side="right")
            - np.searchsorted(keys, lo, side="left")
        )


def main() -> None:
    rng = np.random.default_rng(7)
    device = Device(K40C_SPEC, seed=7)
    lsm = GPULSM(
        config=LSMConfig(
            batch_size=BATCH,
            maintenance_policy=StaleFractionPolicy(
                threshold=CLEANUP_THRESHOLD
            ),
        ),
        device=device,
    )

    window = []          # batches currently inside the sliding window
    oracle = WindowOracle()
    rows = []

    for step in range(NUM_INGEST_STEPS):
        cells, event_ids = make_event_batch(rng, step)

        # Expire the oldest batch once the window is full: a mixed batch
        # that deletes the expired cells while inserting the new events
        # would also work; keeping them separate makes the output clearer.
        if len(window) >= WINDOW_BATCHES:
            expired_cells, _ = window.pop(0)
            lsm.delete(expired_cells)
            oracle.expire(expired_cells)
        lsm.insert(cells, event_ids)
        oracle.ingest(cells, event_ids)
        window.append((cells, event_ids))

        # Dashboard refresh: per-tile counts plus the user's region fetch.
        tile_base = rng.integers(0, (1 << CELL_BITS) - (1 << 10),
                                 TILES_PER_DASHBOARD, dtype=np.uint32)
        tile_counts = lsm.count(tile_base, tile_base + np.uint32((1 << 10) - 1))

        region_base = rng.integers(0, (1 << CELL_BITS) - (1 << 14),
                                   REGION_QUERIES, dtype=np.uint32)
        region = lsm.range_query(region_base,
                                 region_base + np.uint32((1 << 14) - 1))

        # The answers must match the window oracle exactly — maintenance
        # (whenever the policy decides to run it) never changes them.
        assert np.array_equal(
            tile_counts, oracle.counts(tile_base, tile_base + ((1 << 10) - 1))
        ), "tile counts diverged from the event-window oracle"
        assert np.array_equal(
            region.counts,
            oracle.counts(region_base, region_base + ((1 << 14) - 1)),
        ), "region results diverged from the event-window oracle"

        # Policy-driven maintenance: the StaleFractionPolicy configured on
        # the LSM decides; this replaces the old hand-rolled
        # `if stale_fraction_estimate() > threshold: cleanup()` loop.
        stale = lsm.stale_fraction_estimate()
        ran = lsm.run_due_maintenance()

        if step % 4 == 3:
            rows.append({
                "step": step + 1,
                "resident_elements": lsm.num_elements,
                "occupied_levels": lsm.num_occupied_levels,
                "stale_estimate": round(stale, 3),
                "cleanup": ran is not None,
                "events_in_tiles": int(tile_counts.sum()),
                "events_in_regions": int(region.counts.sum()),
            })

    print(format_table(
        rows,
        title=(f"Streaming geo-analytics: {NUM_INGEST_STEPS} ingest batches of "
               f"{BATCH} events, {WINDOW_BATCHES}-batch sliding window"),
    ))

    profile = [r for r in device.profiler.summary_rows()
               if r["region"].startswith("lsm.")]
    by_region = {}
    for r in profile:
        agg = by_region.setdefault(r["region"], {"region": r["region"],
                                                 "calls": 0, "simulated_ms": 0.0})
        agg["calls"] += 1
        agg["simulated_ms"] += r["simulated_ms"]
    print(format_table(list(by_region.values()),
                       title="Aggregate simulated time by operation"))

    maint = lsm.maintenance_stats()
    print(f"maintenance runs: {maint['runs']} "
          f"(triggers {maint['triggers']}), "
          f"reclaimed {maint['reclaimed_elements']} elements in "
          f"{maint['simulated_seconds'] * 1e3:.2f} simulated ms")
    print("all dashboard answers matched the event-window oracle")


if __name__ == "__main__":
    main()
